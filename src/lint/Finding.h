//===- lint/Finding.h - Structured lint findings -----------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One finding of the static validation subsystem: which pass produced it,
/// a stable check code, a severity on the shared diagnostic scale, and the
/// two anchor kinds a graph analysis has — a source location and/or an MDG
/// node. Findings render as text (one per line, compiler style) and as
/// machine-readable JSON (see docs/LINT.md for the format).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_LINT_FINDING_H
#define GJS_LINT_FINDING_H

#include "support/Diagnostics.h"
#include "support/JSON.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gjs {
namespace lint {

/// Sentinel for "no graph anchor".
constexpr uint32_t NoGraphNode = static_cast<uint32_t>(-1);

/// One validation finding.
struct Finding {
  DiagSeverity Severity = DiagSeverity::Error;
  std::string Pass;  ///< Producing pass, e.g. "ir-verify".
  std::string Check; ///< Stable check code, e.g. "ir.use-before-def".
  std::string Message;
  SourceLocation Loc;              ///< Invalid when not source-anchored.
  uint32_t GraphNode = NoGraphNode; ///< MDG node id when graph-anchored.

  /// Compiler-style one-line rendering.
  std::string str() const;
  /// JSON object: {severity, pass, check, message, line?, column?, node?}.
  json::Value toJSON() const;
};

/// The findings of one lint run.
class LintResult {
public:
  void add(Finding F) {
    if (F.Severity == DiagSeverity::Error)
      ++NumErrors;
    else if (F.Severity == DiagSeverity::Warning)
      ++NumWarnings;
    Findings.push_back(std::move(F));
  }

  const std::vector<Finding> &findings() const { return Findings; }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }
  bool hasErrors() const { return NumErrors != 0; }

  /// One finding per line, then a summary line.
  std::string renderText() const;
  /// {"findings": [...], "errors": N, "warnings": N} pretty-printed.
  std::string renderJSON(unsigned Indent = 2) const;

  /// Mirrors every finding into a DiagnosticEngine (severity, location,
  /// message, and the check code), so library clients consume lint output
  /// through the same channel as parse diagnostics.
  void toDiagnostics(DiagnosticEngine &Diags) const;

private:
  std::vector<Finding> Findings;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace lint
} // namespace gjs

#endif // GJS_LINT_FINDING_H
