//===- lint/PassManager.cpp - Static validation pass manager ---------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "lint/PassManager.h"

#include <sstream>

using namespace gjs;
using namespace gjs::lint;

std::string Finding::str() const {
  std::ostringstream OS;
  if (Loc.isValid())
    OS << Loc.str() << ": ";
  OS << severityName(Severity) << ": " << Message << " [" << Pass << "/"
     << Check << "]";
  if (GraphNode != NoGraphNode)
    OS << " (node o" << GraphNode << ")";
  return OS.str();
}

json::Value Finding::toJSON() const {
  json::Object O;
  O["severity"] = json::Value(severityName(Severity));
  O["pass"] = json::Value(Pass);
  O["check"] = json::Value(Check);
  O["message"] = json::Value(Message);
  if (Loc.isValid()) {
    O["line"] = json::Value(static_cast<unsigned>(Loc.Line));
    O["column"] = json::Value(static_cast<unsigned>(Loc.Column));
  }
  if (GraphNode != NoGraphNode)
    O["node"] = json::Value(GraphNode);
  return json::Value(std::move(O));
}

std::string LintResult::renderText() const {
  std::ostringstream OS;
  for (const Finding &F : Findings)
    OS << F.str() << '\n';
  OS << NumErrors << " error(s), " << NumWarnings << " warning(s), "
     << (Findings.size() - NumErrors - NumWarnings) << " note(s)\n";
  return OS.str();
}

std::string LintResult::renderJSON(unsigned Indent) const {
  json::Array Arr;
  for (const Finding &F : Findings)
    Arr.push_back(F.toJSON());
  json::Object O;
  O["findings"] = json::Value(std::move(Arr));
  O["errors"] = json::Value(NumErrors);
  O["warnings"] = json::Value(NumWarnings);
  return json::Value(std::move(O)).str(Indent);
}

void LintResult::toDiagnostics(DiagnosticEngine &Diags) const {
  for (const Finding &F : Findings) {
    Diagnostic D;
    D.Severity = F.Severity;
    D.Loc = F.Loc;
    D.Message = F.Message;
    D.Code = F.Pass + "/" + F.Check;
    Diags.report(std::move(D));
  }
}

LintResult PassManager::run(const LintContext &Ctx) const {
  LintResult Out;
  for (const auto &P : Passes)
    P->run(Ctx, Out);
  return Out;
}

PassManager PassManager::standard() {
  PassManager PM;
  PM.addPass(createIRVerifierPass());
  PM.addPass(createAsyncPass());
  PM.addPass(createMDGCheckPass());
  PM.addPass(createQuerySchemaPass());
  PM.addPass(createCallGraphPass());
  PM.addPass(createPkgGraphPass());
  return PM;
}
