//===- lint/PassManager.h - Static validation pass manager -------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static validation subsystem (`graphjs lint`): a lightweight pass
/// manager running check passes over the pipeline's artifacts. Six pass
/// families ship by default:
///
///  - **ir-verify** — post-Normalizer Core IR invariants (temporaries
///    defined before use, single-assignment temporaries, well-formed
///    function/export registries, unique allocation-site indices) plus
///    orphaned-CFG-block detection.
///
///  - **async** — async-lowering well-formedness (core/AsyncLower.h):
///    every await suspend has a matching resume join, reaction calls
///    target variables (with a note for handlers left to the call graph's
///    UnresolvedCallback soundness valve), and no promise allocation is
///    orphaned (see docs/ASYNC.md).
///
///  - **mdg-check** — MDG well-formedness over any built graph: edge
///    endpoints in range, adjacency-list/edge-set consistency, property
///    symbols present exactly on P/V edges, call-argument D edges, taint
///    flags consistent with the builder's source list, and version-chain
///    shape notes.
///
///  - **query-schema** — every query (the built-in Table 2 queries and any
///    ad-hoc text) linted against the machine-readable import schema
///    (`graphdb::mdgSchema()`): unknown labels/relationship types/property
///    keys, unsatisfiable hop bounds, unused bindings, unbound variables.
///
///  - **callgraph** — the summary-based pruning stage's own invariants:
///    resolved call edges target live functions (cross-checked against the
///    MDG's function nodes), summary masks stay inside each function's
///    parameter bits, and the SCC order is a valid reverse-topological
///    cover (see docs/CALLGRAPH.md).
///
///  - **pkggraph** — dependency-tree invariants for cross-package scans:
///    dangling inter-package edges (declared dependencies that are missing
///    or unanalyzable), dependency-cycle reports, and per-package summary
///    schema/version mismatches (see docs/DEPENDENCIES.md).
///
/// Each pass reads what it needs from a LintContext and appends findings;
/// passes never mutate artifacts and tolerate missing context (a pass with
/// nothing to check is a no-op), so the same manager serves the CLI, the
/// scanner's SelfCheck mode, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_LINT_PASSMANAGER_H
#define GJS_LINT_PASSMANAGER_H

#include "lint/Finding.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace gjs {

namespace core {
struct Program;
}
namespace cfg {
struct ModuleCFG;
}
namespace analysis {
struct BuildResult;
class PackageGraph;
}
namespace queries {
class SinkConfig;
}

namespace lint {

/// What a lint run may look at. All pointers optional; a pass skips
/// artifacts that are absent.
struct LintContext {
  const core::Program *Program = nullptr;      ///< Normalized Core IR.
  const cfg::ModuleCFG *CFG = nullptr;         ///< CFGs of the parsed AST.
  const analysis::BuildResult *Build = nullptr; ///< Constructed MDG.
  /// Sink configuration whose instantiated Table 2 queries get linted.
  const queries::SinkConfig *Sinks = nullptr;
  /// Additional ad-hoc query texts to lint (e.g. `graphjs lint --query`).
  std::vector<std::string> ExtraQueries;
  /// All normalized modules of a package (with parallel module stems) for
  /// the call-graph checker; when empty it falls back to Program alone.
  std::vector<const core::Program *> Programs;
  std::vector<std::string> Stems;
  /// Dependency tree for the pkggraph checker (dependency-tree scans).
  const analysis::PackageGraph *Packages = nullptr;
  /// Per-package summary JSON blobs to validate against the current
  /// schema/tree, as (origin label, JSON text) pairs.
  std::vector<std::pair<std::string, std::string>> PackageSummaries;
};

/// One validation pass.
class Pass {
public:
  virtual ~Pass() = default;
  virtual const char *name() const = 0;
  virtual void run(const LintContext &Ctx, LintResult &Out) = 0;
};

/// Runs passes in registration order over one context.
class PassManager {
public:
  void addPass(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }
  LintResult run(const LintContext &Ctx) const;

  /// The standard pipeline: ir-verify, async, mdg-check, query-schema,
  /// callgraph, pkggraph.
  static PassManager standard();

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

/// Pass factories (registered by PassManager::standard; individually
/// constructible for targeted checking, e.g. the scanner's SelfCheck mode
/// runs only the MDG checker).
std::unique_ptr<Pass> createIRVerifierPass();
std::unique_ptr<Pass> createAsyncPass();
std::unique_ptr<Pass> createMDGCheckPass();
std::unique_ptr<Pass> createQuerySchemaPass();
std::unique_ptr<Pass> createCallGraphPass();
std::unique_ptr<Pass> createPkgGraphPass();

} // namespace lint
} // namespace gjs

#endif // GJS_LINT_PASSMANAGER_H
