//===- lint/CallGraphPass.cpp - Call-graph/summary validation pass ---------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
//
// Validates the summary-based pruning stage's two artifacts against each
// other and against the built MDG:
//
//   callgraph.dead-target  — a resolved call edge (or callback edge) whose
//                            target is not a live function definition in
//                            the call-graph registry, or (when an MDG is
//                            present) a top-level-defined target with no
//                            live MDG function node
//   callgraph.bad-param-bit — a summary mask claiming a parameter origin
//                            the function does not have, or a MutFlow
//                            vector whose length disagrees with NumParams
//   callgraph.scc-order    — the SCC list is not a valid reverse
//                            topological order of the condensation (a
//                            resolved/callback edge points from an earlier
//                            SCC into a later one)
//
// The pass rebuilds the call graph and summaries from LintContext::Programs
// (falling back to the single Program), so `graphjs lint` and the scanner's
// --self-check mode exercise the same construction the pruning stage uses.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/MDGBuilder.h"
#include "analysis/TaintSummary.h"
#include "lint/PassManager.h"
#include "queries/SinkConfig.h"

#include <set>
#include <string>
#include <vector>

using namespace gjs;
using namespace gjs::lint;

namespace {

class CallGraphPass : public Pass {
public:
  const char *name() const override { return "callgraph"; }

  void run(const LintContext &Ctx, LintResult &Out) override {
    std::vector<const core::Program *> Mods = Ctx.Programs;
    std::vector<std::string> Stems = Ctx.Stems;
    if (Mods.empty() && Ctx.Program) {
      Mods.push_back(Ctx.Program);
      Stems.push_back("");
    }
    if (Mods.empty())
      return;
    Stems.resize(Mods.size());
    Result = &Out;

    analysis::CallGraph CG = analysis::CallGraph::build(Mods, Stems);
    analysis::SummarySet Sums = analysis::computeSummaries(
        CG, Mods,
        queries::toSinkTable(Ctx.Sinks ? *Ctx.Sinks
                                       : queries::SinkConfig::defaults()));

    checkEdgeTargets(Ctx, CG, Mods);
    checkSummaries(CG, Sums);
    checkSCCOrder(CG);
    Result = nullptr;
  }

private:
  LintResult *Result = nullptr;

  void report(const char *Check, SourceLocation Loc, std::string Message) {
    Finding F;
    F.Severity = DiagSeverity::Error;
    F.Pass = name();
    F.Check = Check;
    F.Loc = Loc;
    F.Message = std::move(Message);
    Result->add(std::move(F));
  }

  /// Function names defined by a top-level FuncDef of any module. The MDG
  /// builder visits every top-level statement, so these (and only these)
  /// are guaranteed a live function node; nested definitions materialize
  /// only when the builder inlines the enclosing body.
  static std::set<std::string>
  topLevelFuncs(const std::vector<const core::Program *> &Mods) {
    std::set<std::string> Names;
    for (const core::Program *P : Mods)
      for (const core::StmtPtr &S : P->TopLevel)
        if (S->K == core::StmtKind::FuncDef && S->Func)
          Names.insert(S->Func->Name);
    return Names;
  }

  void checkEdgeTargets(const LintContext &Ctx, const analysis::CallGraph &CG,
                        const std::vector<const core::Program *> &Mods) {
    const auto &Funcs = CG.functions();
    // MDG cross-check only over complete builds: a budget-truncated build
    // legitimately misses function nodes.
    const analysis::BuildResult *B =
        Ctx.Build && !Ctx.Build->TimedOut ? Ctx.Build : nullptr;
    std::set<std::string> TopLevel = B ? topLevelFuncs(Mods)
                                       : std::set<std::string>();
    auto CheckTarget = [&](const analysis::CallSite &S, analysis::FuncId T,
                           const char *EdgeKind) {
      if (T >= Funcs.size()) {
        report("callgraph.dead-target", S.Loc,
               std::string(EdgeKind) + " edge to out-of-range function id " +
                   std::to_string(T));
        return;
      }
      const analysis::CGFunction &F = Funcs[T];
      if (!F.Fn || F.IsToplevel) {
        report("callgraph.dead-target", S.Loc,
               std::string(EdgeKind) + " edge to non-function node '" +
                   F.Name + "'");
        return;
      }
      if (B && TopLevel.count(F.Name) && !B->FunctionNodes.count(F.Name))
        report("callgraph.dead-target", S.Loc,
               std::string(EdgeKind) + " edge to '" + F.Name +
                   "' with no live MDG function node");
    };
    for (const analysis::CallSite &S : CG.sites()) {
      for (analysis::FuncId T : S.Targets)
        CheckTarget(S, T, "resolved call");
      for (analysis::FuncId T : S.CallbackArgs)
        CheckTarget(S, T, "callback");
    }
  }

  void checkSummaries(const analysis::CallGraph &CG,
                      const analysis::SummarySet &Sums) {
    const auto &Funcs = CG.functions();
    if (Sums.Summaries.size() != Funcs.size()) {
      report("callgraph.bad-param-bit", SourceLocation(),
             "summary set size " + std::to_string(Sums.Summaries.size()) +
                 " != call-graph function count " +
                 std::to_string(Funcs.size()));
      return;
    }
    for (size_t I = 0; I < Funcs.size(); ++I) {
      const analysis::FunctionSummary &S = Sums.Summaries[I];
      // Legal origins: this function's own parameter bits plus `other`.
      // Parameter indices >= 62 collapse into bit 62, so a function with
      // > 62 params legally uses the whole parameter range.
      analysis::OriginMask Allowed =
          analysis::paramsMask(S.NumParams) | analysis::OtherOrigin;
      auto CheckMask = [&](analysis::OriginMask M, const char *What) {
        if (M & ~Allowed)
          report("callgraph.bad-param-bit", SourceLocation(),
                 "summary of '" + S.Name + "' " + What +
                     " references a parameter the function does not have (" +
                     analysis::maskToString(M, S.NumParams) + ", " +
                     std::to_string(S.NumParams) + " params)");
      };
      for (int C = 0; C < analysis::NumSinkClasses; ++C)
        CheckMask(S.SinkFlow[C], analysis::sinkClassTag(C));
      CheckMask(S.RetFlow, "return flow");
      CheckMask(S.PolluteFlow, "pollute flow");
      CheckMask(S.UnresolvedArgFlow, "unresolved-arg flow");
      CheckMask(S.GlobalWriteFlow, "global-write flow");
      if (S.MutFlow.size() != S.NumParams)
        report("callgraph.bad-param-bit", SourceLocation(),
               "summary of '" + S.Name + "' has " +
                   std::to_string(S.MutFlow.size()) +
                   " MutFlow entries for " + std::to_string(S.NumParams) +
                   " params");
      for (analysis::OriginMask M : S.MutFlow)
        CheckMask(M, "mutation flow");
    }
  }

  void checkSCCOrder(const analysis::CallGraph &CG) {
    const auto &Funcs = CG.functions();
    const auto &Order = CG.sccOrder();
    std::vector<size_t> Rank(Funcs.size(), static_cast<size_t>(-1));
    size_t Covered = 0;
    for (size_t I = 0; I < Order.size(); ++I)
      for (analysis::FuncId F : Order[I]) {
        if (F >= Funcs.size() || Rank[F] != static_cast<size_t>(-1)) {
          report("callgraph.scc-order", SourceLocation(),
                 "SCC list repeats or misindexes function id " +
                     std::to_string(F));
          return;
        }
        Rank[F] = I;
        ++Covered;
      }
    if (Covered != Funcs.size()) {
      report("callgraph.scc-order", SourceLocation(),
             "SCC list covers " + std::to_string(Covered) + " of " +
                 std::to_string(Funcs.size()) + " functions");
      return;
    }
    // Reverse topological: every edge from SCC rank i lands in rank <= i.
    for (const analysis::CallSite &S : CG.sites()) {
      if (S.Caller == analysis::InvalidFuncId)
        continue;
      auto CheckEdge = [&](analysis::FuncId T) {
        if (T < Funcs.size() && Rank[T] > Rank[S.Caller])
          report("callgraph.scc-order", S.Loc,
                 "call from '" + Funcs[S.Caller].Name + "' (SCC " +
                     std::to_string(Rank[S.Caller]) + ") into later SCC " +
                     std::to_string(Rank[T]) + " ('" + Funcs[T].Name +
                     "') breaks bottom-up summary order");
      };
      for (analysis::FuncId T : S.Targets)
        CheckEdge(T);
      for (analysis::FuncId T : S.CallbackArgs)
        CheckEdge(T);
    }
  }
};

} // namespace

std::unique_ptr<Pass> lint::createCallGraphPass() {
  return std::make_unique<CallGraphPass>();
}
