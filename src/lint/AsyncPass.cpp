//===- lint/AsyncPass.cpp - Async lowering well-formedness pass ------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
//
// Validates the async lowering's output shape (core/AsyncLower.h). The MDG
// builder consumes the suspend/resume pairs and reaction calls purely
// structurally, so a malformed rewrite would silently drop async flows
// rather than crash — these checks catch it at the IR boundary:
//
//   async.orphan-suspend   — an await suspend (`%a := p.%promise`) with no
//                            matching resume join later in the same block
//   async.orphan-resume    — a resume join whose settled-value operand was
//                            never produced by a suspend in this block
//   async.reaction-callee  — a reaction call whose callee is not a variable
//                            (nothing the call graph could ever resolve)
//   async.reaction-unresolved — (note) a reaction whose callee is not
//                            statically a function value: left to the call
//                            graph's UnresolvedCallback soundness valve
//   async.orphan-promise   — a promise allocation no later statement in the
//                            block references (settles into nothing)
//
//===----------------------------------------------------------------------===//

#include "core/CoreIR.h"
#include "lint/PassManager.h"

#include <set>
#include <string>
#include <vector>

using namespace gjs;
using namespace gjs::lint;
using namespace gjs::core;

namespace {

class AsyncPass : public Pass {
public:
  const char *name() const override { return "async"; }

  void run(const LintContext &Ctx, LintResult &Out) override {
    Result = &Out;
    std::vector<const Program *> Programs = Ctx.Programs;
    if (Programs.empty() && Ctx.Program)
      Programs.push_back(Ctx.Program);
    for (const Program *P : Programs) {
      if (!P)
        continue;
      FuncVars.clear();
      collectFuncVars(P->TopLevel);
      for (const auto &[Name, Fn] : P->Functions)
        if (Fn)
          collectFuncVars(Fn->Body);
      checkBlock(P->TopLevel);
      for (const auto &[Name, Fn] : P->Functions)
        if (Fn)
          checkBlock(Fn->Body);
    }
    Result = nullptr;
  }

private:
  LintResult *Result = nullptr;
  std::set<std::string> FuncVars;

  void report(DiagSeverity Sev, const char *Check, SourceLocation Loc,
              std::string Message) {
    Finding F;
    F.Severity = Sev;
    F.Pass = name();
    F.Check = Check;
    F.Loc = Loc;
    F.Message = std::move(Message);
    Result->add(std::move(F));
  }

  void collectFuncVars(const std::vector<StmtPtr> &Block) {
    for (const StmtPtr &S : Block) {
      if (S->K == StmtKind::FuncDef && !S->Target.empty())
        FuncVars.insert(S->Target);
      collectFuncVars(S->Then);
      collectFuncVars(S->Else);
      collectFuncVars(S->Body);
    }
  }

  /// Does any statement in Block (recursively) at position >= From mention
  /// Var as an operand or receiver?
  static bool mentions(const Stmt &S, const std::string &Var) {
    for (const Operand *O : {&S.Obj, &S.PropOperand, &S.Value, &S.LHS, &S.RHS,
                             &S.Callee, &S.Receiver, &S.Cond})
      if (O->isVar() && O->Name == Var)
        return true;
    for (const Operand &A : S.Args)
      if (A.isVar() && A.Name == Var)
        return true;
    for (const auto *Sub : {&S.Then, &S.Else, &S.Body})
      for (const StmtPtr &N : *Sub)
        if (mentions(*N, Var))
          return true;
    return false;
  }

  void checkBlock(const std::vector<StmtPtr> &Block) {
    // Suspend targets awaiting their resume join, in this block.
    std::set<std::string> OpenSuspends;
    for (size_t I = 0; I < Block.size(); ++I) {
      const Stmt &S = *Block[I];
      checkBlock(S.Then);
      checkBlock(S.Else);
      checkBlock(S.Body);

      switch (S.Async) {
      case AsyncRole::AwaitSuspend:
        if (!S.Target.empty())
          OpenSuspends.insert(S.Target);
        break;
      case AsyncRole::AwaitResume: {
        // A resume joins the raw and the flattened suspend reads: both of
        // its operands must have been produced by suspends in this block.
        bool ClosedAny = false;
        for (const Operand *O : {&S.LHS, &S.RHS})
          if (O->isVar())
            ClosedAny |= OpenSuspends.erase(O->Name) != 0;
        if (!ClosedAny)
          report(DiagSeverity::Error, "async.orphan-resume", S.Loc,
                 "await resume joins no value produced by a suspend in "
                 "this block");
        break;
      }
      case AsyncRole::ReactionCall: {
        if (!S.Callee.isVar()) {
          report(DiagSeverity::Error, "async.reaction-callee", S.Loc,
                 "reaction call's callee is not a variable — the call graph "
                 "can never resolve it");
          break;
        }
        if (!FuncVars.count(S.Callee.Name))
          report(DiagSeverity::Note, "async.reaction-unresolved", S.Loc,
                 "reaction handler '" + S.Callee.Name +
                     "' is not statically a function value (left to the "
                     "UnresolvedCallback soundness valve)");
        break;
      }
      case AsyncRole::PromiseAlloc: {
        bool Used = false;
        for (size_t J = I + 1; J < Block.size() && !Used; ++J)
          Used = mentions(*Block[J], S.Target);
        if (!Used)
          report(DiagSeverity::Error, "async.orphan-promise", S.Loc,
                 "promise allocation '" + S.Target +
                     "' is never settled or consumed in its block");
        break;
      }
      default:
        break;
      }
    }
    for (const std::string &T : OpenSuspends)
      report(DiagSeverity::Error, "async.orphan-suspend", {},
             "await suspend '" + T +
                 "' has no matching resume join in its block");
  }
};

} // namespace

std::unique_ptr<Pass> lint::createAsyncPass() {
  return std::make_unique<AsyncPass>();
}
