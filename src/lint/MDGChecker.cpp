//===- lint/MDGChecker.cpp - MDG well-formedness pass ----------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
//
// Well-formedness of a built MDG — the invariants that used to live in
// release-mode-silent asserts, promoted to diagnosed findings runnable
// over any BuildResult (the scanner's SelfCheck mode runs this after
// construction):
//
//   mdg.edge-endpoint   — an edge endpoint out of node range
//   mdg.adjacency       — out/in adjacency lists disagree with each other
//                         or with the edge count
//   mdg.edge-prop       — a P(p)/V(p) edge with a zero or out-of-range
//                         property symbol, or a D/P(*)/V(*) edge carrying
//                         a property symbol
//   mdg.call-meta       — a Call node without a callee name
//   mdg.call-arg        — a recorded call argument with an invalid id or
//                         missing its D edge into the call node
//   mdg.call-version    — a Call node with outgoing version edges
//   mdg.taint-flag      — BuildResult::TaintSources inconsistent with the
//                         per-node IsTaintSource flags
//   mdg.version-cycle   — note: a cyclic version chain (expected under the
//                         site-reuse allocator in loops, §5.5)
//   mdg.version-fanout  — note: one version with multiple successors for
//                         the same property (branch joins)
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"
#include "lint/PassManager.h"
#include "mdg/MDG.h"

#include <algorithm>
#include <set>

using namespace gjs;
using namespace gjs::lint;
using namespace gjs::mdg;

namespace {

class MDGChecker : public Pass {
public:
  const char *name() const override { return "mdg-check"; }

  void run(const LintContext &Ctx, LintResult &Out) override {
    if (!Ctx.Build)
      return;
    Result = &Out;
    const analysis::BuildResult &B = *Ctx.Build;
    checkEdges(B);
    checkCalls(B);
    checkTaint(B);
    checkVersionChains(B);
    Result = nullptr;
  }

private:
  LintResult *Result = nullptr;

  void report(DiagSeverity Sev, const char *Check, uint32_t Node,
              SourceLocation Loc, std::string Message) {
    Finding F;
    F.Severity = Sev;
    F.Pass = name();
    F.Check = Check;
    F.GraphNode = Node;
    F.Loc = Loc;
    F.Message = std::move(Message);
    Result->add(std::move(F));
  }

  void checkEdges(const analysis::BuildResult &B) {
    const Graph &G = B.Graph;
    const size_t N = G.numNodes();
    size_t OutTotal = 0, InTotal = 0;
    for (NodeId Id = 0; Id < N; ++Id) {
      OutTotal += G.out(Id).size();
      InTotal += G.in(Id).size();
      for (const Edge &E : G.out(Id)) {
        if (E.From != Id)
          report(DiagSeverity::Error, "mdg.adjacency", Id, G.node(Id).Loc,
                 "out-edge stored under o" + std::to_string(Id) +
                     " claims source o" + std::to_string(E.From));
        if (E.From >= N || E.To >= N) {
          report(DiagSeverity::Error, "mdg.edge-endpoint", Id, G.node(Id).Loc,
                 "edge o" + std::to_string(E.From) + " -> o" +
                     std::to_string(E.To) + " has an endpoint out of range (" +
                     std::to_string(N) + " nodes)");
          continue;
        }
        // The mirror entry must exist in the target's in-list.
        const auto &InList = G.in(E.To);
        if (std::find(InList.begin(), InList.end(), E) == InList.end())
          report(DiagSeverity::Error, "mdg.adjacency", E.To, G.node(E.To).Loc,
                 "edge o" + std::to_string(E.From) + " -> o" +
                     std::to_string(E.To) +
                     " is missing from the target's in-edge list");
        checkEdgeProp(B, E);
      }
    }
    if (OutTotal != G.numEdges() || InTotal != G.numEdges())
      report(DiagSeverity::Error, "mdg.adjacency", NoGraphNode, {},
             "edge count " + std::to_string(G.numEdges()) +
                 " disagrees with adjacency totals (out " +
                 std::to_string(OutTotal) + ", in " + std::to_string(InTotal) +
                 ")");
  }

  void checkEdgeProp(const analysis::BuildResult &B, const Edge &E) {
    const bool Named =
        E.Kind == EdgeKind::Prop || E.Kind == EdgeKind::Version;
    if (Named) {
      if (E.Prop == 0)
        report(DiagSeverity::Error, "mdg.edge-prop", E.From,
               B.Graph.node(E.From).Loc,
               edgeKindLabel(E.Kind) + " edge o" + std::to_string(E.From) +
                   " -> o" + std::to_string(E.To) +
                   " carries no property symbol");
      else if (E.Prop >= B.Props.size())
        report(DiagSeverity::Error, "mdg.edge-prop", E.From,
               B.Graph.node(E.From).Loc,
               edgeKindLabel(E.Kind) + " edge o" + std::to_string(E.From) +
                   " -> o" + std::to_string(E.To) + " names symbol " +
                   std::to_string(E.Prop) + " outside the interner (size " +
                   std::to_string(B.Props.size()) + ")");
    } else if (E.Prop != 0) {
      report(DiagSeverity::Error, "mdg.edge-prop", E.From,
             B.Graph.node(E.From).Loc,
             edgeKindLabel(E.Kind) + " edge o" + std::to_string(E.From) +
                 " -> o" + std::to_string(E.To) +
                 " carries a property symbol but its kind is unnamed");
    }
  }

  void checkCalls(const analysis::BuildResult &B) {
    const Graph &G = B.Graph;
    const size_t N = G.numNodes();
    std::set<NodeId> CallSet(B.CallNodes.begin(), B.CallNodes.end());
    for (NodeId Id = 0; Id < N; ++Id) {
      const Node &Nd = G.node(Id);
      if (Nd.Kind != NodeKind::Call) {
        if (CallSet.count(Id))
          report(DiagSeverity::Error, "mdg.call-meta", Id, Nd.Loc,
                 "o" + std::to_string(Id) +
                     " is listed in CallNodes but is not a Call node");
        continue;
      }
      if (!CallSet.count(Id))
        report(DiagSeverity::Error, "mdg.call-meta", Id, Nd.Loc,
               "Call node o" + std::to_string(Id) +
                   " is missing from BuildResult::CallNodes");
      if (Nd.CallName.empty() && Nd.CallPath.empty())
        report(DiagSeverity::Note, "mdg.call-meta", Id, Nd.Loc,
               "Call node o" + std::to_string(Id) +
                   " has neither a callee name nor a path (computed callee)");
      for (unsigned Pos = 0; Pos < Nd.Args.size(); ++Pos) {
        for (NodeId Arg : Nd.Args[Pos]) {
          if (Arg >= N) {
            report(DiagSeverity::Error, "mdg.call-arg", Id, Nd.Loc,
                   "Call node o" + std::to_string(Id) + " argument " +
                       std::to_string(Pos) + " references invalid node o" +
                       std::to_string(Arg));
            continue;
          }
          // The builder wires a D edge from every argument location into
          // the call node — the Table 2 queries' `(arg)-[:D]->(call)` leg
          // depends on it.
          if (!G.hasEdge(Arg, Id, EdgeKind::Dep))
            report(DiagSeverity::Error, "mdg.call-arg", Id, Nd.Loc,
                   "Call node o" + std::to_string(Id) + " argument " +
                       std::to_string(Pos) + " (o" + std::to_string(Arg) +
                       ") has no D edge into the call");
        }
      }
      for (const Edge &E : G.out(Id))
        if (E.Kind == EdgeKind::Version || E.Kind == EdgeKind::VersionUnknown)
          report(DiagSeverity::Error, "mdg.call-version", Id, Nd.Loc,
                 "Call node o" + std::to_string(Id) +
                     " has an outgoing version edge (calls are not "
                     "versioned objects)");
    }
  }

  void checkTaint(const analysis::BuildResult &B) {
    const Graph &G = B.Graph;
    const size_t N = G.numNodes();
    std::set<NodeId> Sources(B.TaintSources.begin(), B.TaintSources.end());
    for (NodeId S : Sources) {
      if (S >= N) {
        report(DiagSeverity::Error, "mdg.taint-flag", S, {},
               "TaintSources references invalid node o" + std::to_string(S));
        continue;
      }
      if (!G.node(S).IsTaintSource)
        report(DiagSeverity::Error, "mdg.taint-flag", S, G.node(S).Loc,
               "o" + std::to_string(S) +
                   " is listed as a taint source but its node flag is unset");
    }
    for (NodeId Id = 0; Id < N; ++Id)
      if (G.node(Id).IsTaintSource && !Sources.count(Id))
        report(DiagSeverity::Error, "mdg.taint-flag", Id, G.node(Id).Loc,
               "o" + std::to_string(Id) +
                   " is flagged IsTaintSource but missing from "
                   "BuildResult::TaintSources");
  }

  void checkVersionChains(const analysis::BuildResult &B) {
    const Graph &G = B.Graph;
    const size_t N = G.numNodes();

    // Fan-out note: one node versioned more than once on the same property
    // (branches produce this; straight-line code should not).
    for (NodeId Id = 0; Id < N; ++Id) {
      std::set<Symbol> SeenProps;
      for (const Edge &E : G.out(Id)) {
        if (E.Kind != EdgeKind::Version)
          continue;
        if (!SeenProps.insert(E.Prop).second)
          report(DiagSeverity::Note, "mdg.version-fanout", Id, G.node(Id).Loc,
                 "o" + std::to_string(Id) + " has multiple V(" +
                     (E.Prop < B.Props.size() ? B.Props.str(E.Prop)
                                              : "<bad symbol>") +
                     ") successors (branched update)");
      }
    }

    // Cycle note: the site-reuse version allocator intentionally folds loop
    // iterations onto one node, producing cyclic chains (§5.5). Report as a
    // note so graph consumers that assume acyclic chains know to look.
    std::vector<uint8_t> Color(N, 0); // 0 white, 1 gray, 2 black
    for (NodeId Start = 0; Start < N; ++Start) {
      if (Color[Start])
        continue;
      // Iterative DFS over version edges only.
      std::vector<std::pair<NodeId, size_t>> Stack{{Start, 0}};
      Color[Start] = 1;
      while (!Stack.empty()) {
        auto [Cur, I] = Stack.back();
        const auto &Out = G.out(Cur);
        bool Descended = false;
        while (I < Out.size()) {
          const Edge &E = Out[I++];
          if (E.Kind != EdgeKind::Version &&
              E.Kind != EdgeKind::VersionUnknown)
            continue;
          if (Color[E.To] == 1) {
            report(DiagSeverity::Note, "mdg.version-cycle", E.To,
                   G.node(E.To).Loc,
                   "version chain through o" + std::to_string(E.To) +
                       " is cyclic (loop-folded versions)");
          } else if (Color[E.To] == 0) {
            Stack.back().second = I; // Save progress before growing.
            Color[E.To] = 1;
            Stack.push_back({E.To, 0});
            Descended = true;
            break;
          }
        }
        if (!Descended) {
          Color[Cur] = 2;
          Stack.pop_back();
        }
      }
    }
  }
};

} // namespace

std::unique_ptr<Pass> lint::createMDGCheckPass() {
  return std::make_unique<MDGChecker>();
}
