//===- lint/PkgGraphPass.cpp - Dependency-tree validation pass -------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
//
// Validates the cross-package linking artifacts of a dependency-tree scan
// (see docs/DEPENDENCIES.md):
//
//   pkggraph.dangling-dep    — a declared inter-package edge whose target is
//                              missing or unanalyzable: every require of it
//                              stays an unresolved callee, so detection
//                              quality degrades (soundly) for that subtree
//   pkggraph.dep-cycle       — a cyclic dependency group: linked as one SCC,
//                              reported so tree authors see the collapse
//   pkggraph.summary-version — a per-package summary JSON blob whose schema
//                              version does not match the linker's, whose
//                              package name is not in the tree, or whose
//                              recorded version disagrees with the tree's
//
// The pass tolerates missing context: without a PackageGraph it only checks
// the standalone summary blobs (and is a no-op when those are absent too).
//
//===----------------------------------------------------------------------===//

#include "analysis/PackageGraph.h"
#include "lint/PassManager.h"

#include <sstream>
#include <string>

using namespace gjs;
using namespace gjs::lint;

namespace {

class PkgGraphPass : public Pass {
public:
  const char *name() const override { return "pkggraph"; }

  void run(const LintContext &Ctx, LintResult &Out) override {
    Result = &Out;
    if (Ctx.Packages) {
      checkDanglingDeps(*Ctx.Packages);
      checkCycles(*Ctx.Packages);
    }
    checkSummaryBlobs(Ctx);
    Result = nullptr;
  }

private:
  LintResult *Result = nullptr;

  void report(DiagSeverity Sev, const char *Check, std::string Message) {
    Finding F;
    F.Severity = Sev;
    F.Pass = name();
    F.Check = Check;
    F.Message = std::move(Message);
    Result->add(std::move(F));
  }

  void checkDanglingDeps(const analysis::PackageGraph &G) {
    const auto &Pkgs = G.packages();
    for (size_t I = 0; I < Pkgs.size(); ++I) {
      for (size_t Dep : G.depEdges()[I]) {
        const analysis::PackageInfo &Target = Pkgs[Dep];
        if (Target.analyzable())
          continue;
        const char *Why = Target.Missing ? "missing"
                          : Target.Unparseable
                              ? "present but unreadable"
                              : "present but ships no source files";
        report(DiagSeverity::Warning, "dangling-dep",
               "package '" + Pkgs[I].Name + "' depends on '" + Target.Name +
                   "' which is " + Why +
                   "; requires of it stay unresolved callees");
      }
    }
  }

  void checkCycles(const analysis::PackageGraph &G) {
    for (const std::vector<std::string> &Cycle : G.cycles()) {
      std::ostringstream OS;
      OS << "dependency cycle of " << Cycle.size() << " packages linked as "
         << "one group:";
      for (const std::string &Name : Cycle)
        OS << ' ' << Name;
      report(DiagSeverity::Warning, "dep-cycle", OS.str());
    }
  }

  void checkSummaryBlobs(const LintContext &Ctx) {
    for (const auto &[Label, Text] : Ctx.PackageSummaries) {
      analysis::PackageSummaries PS;
      std::string Err;
      if (!analysis::packageSummaryFromJSON(Text, PS, &Err)) {
        report(DiagSeverity::Error, "summary-version",
               Label + ": " + Err);
        continue;
      }
      if (!Ctx.Packages)
        continue;
      size_t I = Ctx.Packages->indexOf(PS.Package);
      if (I == Ctx.Packages->packages().size()) {
        report(DiagSeverity::Error, "summary-version",
               Label + ": summaries for package '" + PS.Package +
                   "' which is not in the dependency tree");
        continue;
      }
      const analysis::PackageInfo &P = Ctx.Packages->packages()[I];
      if (!P.Version.empty() && !PS.Version.empty() &&
          P.Version != PS.Version)
        report(DiagSeverity::Error, "summary-version",
               Label + ": summaries recorded for '" + PS.Package + "@" +
                   PS.Version + "' but the tree has version " + P.Version);
    }
  }
};

} // namespace

std::unique_ptr<Pass> lint::createPkgGraphPass() {
  return std::make_unique<PkgGraphPass>();
}
