//===- lint/QuerySchemaPass.cpp - Query schema lint pass -------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
//
// Wraps graphdb's schema linter (SchemaLint.h) as a validation pass: every
// built-in Table 2 query instantiated from the sink configuration, plus
// any ad-hoc query texts in the context, is checked against the MDG import
// schema. Finding codes come straight from the schema linter
// ("query.unknown-rel-type", "query.hop-bounds", ...).
//
//===----------------------------------------------------------------------===//

#include "graphdb/SchemaLint.h"
#include "lint/PassManager.h"
#include "queries/QueryRunner.h"
#include "queries/SinkConfig.h"

using namespace gjs;
using namespace gjs::lint;

namespace {

class QuerySchemaPass : public Pass {
public:
  const char *name() const override { return "query-schema"; }

  void run(const LintContext &Ctx, LintResult &Out) override {
    const graphdb::GraphSchema &Schema = graphdb::mdgSchema();

    // Built-in Table 2 queries: always lint them when a sink config is in
    // play; the defaults otherwise. A broken built-in must never scan.
    queries::SinkConfig Defaults = queries::SinkConfig::defaults();
    const queries::SinkConfig &Sinks = Ctx.Sinks ? *Ctx.Sinks : Defaults;
    for (const auto &[Name, Text] :
         queries::GraphDBRunner::builtinQueries(Sinks))
      lintOne("built-in query '" + Name + "'", Text, Schema, Out);

    unsigned I = 0;
    for (const std::string &Text : Ctx.ExtraQueries)
      lintOne("query #" + std::to_string(++I), Text, Schema, Out);
  }

private:
  void lintOne(const std::string &Label, const std::string &Text,
               const graphdb::GraphSchema &Schema, LintResult &Out) {
    for (const graphdb::SchemaIssue &Issue :
         graphdb::lintQueryText(Text, Schema)) {
      Finding F;
      F.Severity = Issue.Severity;
      F.Pass = name();
      F.Check = Issue.Code;
      F.Message = Label + ": " + Issue.Message;
      Out.add(std::move(F));
    }
  }
};

} // namespace

std::unique_ptr<Pass> lint::createQuerySchemaPass() {
  return std::make_unique<QuerySchemaPass>();
}
