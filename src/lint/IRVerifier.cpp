//===- lint/IRVerifier.cpp - Core IR + CFG well-formedness pass ------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
//
// Post-Normalizer invariants. The MDG builder keys every allocation on
// statement indices and consumes normalizer temporaries positionally, so a
// malformed lowering silently corrupts the graph rather than crashing —
// these checks catch it at the IR boundary instead:
//
//   ir.use-before-def   — a %t temporary read before any definition
//   ir.multi-assign     — a %t temporary with more than one static def
//                         site (one per branch of the same `if` is the
//                         ternary join and allowed)
//   ir.dup-index        — two statements (or function values) sharing an
//                         allocation-site index
//   ir.zero-index       — an emitted statement without an index
//   ir.func-registry    — registry key != function name, or a FuncDef
//                         statement whose function is absent/unregistered
//   ir.export-dangling  — an export naming a function that does not exist
//   ir.dup-param        — duplicate parameter names in one function
//   cfg.unreachable-block — basic blocks with no path from entry
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"
#include "core/CoreIR.h"
#include "lint/PassManager.h"

#include <map>
#include <set>

using namespace gjs;
using namespace gjs::lint;
using namespace gjs::core;

namespace {

bool isTemp(const std::string &Name) { return Name.rfind("%t", 0) == 0; }

class IRVerifier : public Pass {
public:
  const char *name() const override { return "ir-verify"; }

  void run(const LintContext &Ctx, LintResult &Out) override {
    Result = &Out;
    if (Ctx.Program) {
      const Program &P = *Ctx.Program;
      checkScopes(P);
      checkIndices(P);
      checkTemporaries(P.TopLevel);
      for (const auto &[Name, Fn] : P.Functions)
        if (Fn)
          checkTemporaries(Fn->Body);
    }
    if (Ctx.CFG)
      checkCFG(*Ctx.CFG);
    Result = nullptr;
  }

private:
  LintResult *Result = nullptr;

  void report(DiagSeverity Sev, const char *Check, SourceLocation Loc,
              std::string Message) {
    Finding F;
    F.Severity = Sev;
    F.Pass = name();
    F.Check = Check;
    F.Loc = Loc;
    F.Message = std::move(Message);
    Result->add(std::move(F));
  }

  //===------------------------------------------------------------------===//
  // Scope / registry checks
  //===------------------------------------------------------------------===//

  void checkScopes(const Program &P) {
    for (const auto &[Key, Fn] : P.Functions) {
      if (!Fn) {
        report(DiagSeverity::Error, "ir.func-registry", {},
               "function registry entry '" + Key + "' is null");
        continue;
      }
      if (Fn->Name != Key)
        report(DiagSeverity::Error, "ir.func-registry", Fn->Loc,
               "function registry key '" + Key + "' does not match function "
               "name '" + Fn->Name + "'");
      std::set<std::string> Params;
      for (const std::string &Param : Fn->Params)
        if (!Params.insert(Param).second)
          report(DiagSeverity::Warning, "ir.dup-param", Fn->Loc,
                 "function '" + Fn->Name + "' has duplicate parameter '" +
                     Param + "'");
    }
    for (const ExportEntry &E : P.Exports)
      if (!P.Functions.count(E.FunctionName))
        report(DiagSeverity::Error, "ir.export-dangling", {},
               "export '" + E.ExportName + "' references unknown function '" +
                   E.FunctionName + "'");
    walkStmts(P.TopLevel, [&](const Stmt &S) {
      if (S.K != StmtKind::FuncDef)
        return;
      if (!S.Func) {
        report(DiagSeverity::Error, "ir.func-registry", S.Loc,
               "FuncDef statement carries no function");
        return;
      }
      if (!P.Functions.count(S.Func->Name))
        report(DiagSeverity::Error, "ir.func-registry", S.Loc,
               "FuncDef for '" + S.Func->Name +
                   "' is not in the program's function registry");
    });
    for (const auto &[Name, Fn] : P.Functions)
      if (Fn)
        walkStmts(Fn->Body, [&](const Stmt &S) {
          if (S.K == StmtKind::FuncDef && S.Func &&
              !P.Functions.count(S.Func->Name))
            report(DiagSeverity::Error, "ir.func-registry", S.Loc,
                   "FuncDef for '" + S.Func->Name +
                       "' is not in the program's function registry");
        });
  }

  //===------------------------------------------------------------------===//
  // Allocation-site index checks
  //===------------------------------------------------------------------===//

  void checkIndices(const Program &P) {
    // Statement and function-value indices share one allocator and are the
    // builder's allocation keys: a collision merges two distinct abstract
    // objects into one node.
    std::map<StmtIndex, unsigned> Seen;
    std::map<StmtIndex, SourceLocation> FirstLoc;
    auto Visit = [&](StmtIndex I, SourceLocation Loc, const char *What) {
      if (I == 0) {
        report(DiagSeverity::Error, "ir.zero-index", Loc,
               std::string(What) + " has no allocation-site index");
        return;
      }
      if (++Seen[I] == 2)
        report(DiagSeverity::Error, "ir.dup-index", Loc,
               std::string(What) + " reuses allocation-site index " +
                   std::to_string(I) + " (first used at " +
                   (FirstLoc[I].isValid() ? FirstLoc[I].str() : "<unknown>") +
                   ")");
      else
        FirstLoc.emplace(I, Loc);
    };
    walkStmts(P.TopLevel,
              [&](const Stmt &S) { Visit(S.Index, S.Loc, "statement"); });
    for (const auto &[Name, Fn] : P.Functions) {
      if (!Fn)
        continue;
      Visit(Fn->Index, Fn->Loc, "function value");
      walkStmts(Fn->Body,
                [&](const Stmt &S) { Visit(S.Index, S.Loc, "statement"); });
    }
  }

  //===------------------------------------------------------------------===//
  // Temporary def/use checks
  //===------------------------------------------------------------------===//

  /// All variable operands a statement reads.
  static void collectUses(const Stmt &S, std::vector<const Operand *> &Uses) {
    for (const Operand *O : {&S.Obj, &S.PropOperand, &S.Value, &S.LHS, &S.RHS,
                             &S.Callee, &S.Receiver, &S.Cond})
      if (O->isVar())
        Uses.push_back(O);
    for (const Operand &A : S.Args)
      if (A.isVar())
        Uses.push_back(&A);
  }

  void checkTemporaries(const std::vector<StmtPtr> &Body) {
    std::set<std::string> Defined;
    checkUseBeforeDef(Body, Defined);
    std::map<std::string, unsigned> Defs;
    std::map<std::string, SourceLocation> DefLoc;
    countDefs(Body, Defs, DefLoc);
    for (const auto &[Temp, Count] : Defs)
      if (Count > 1)
        report(DiagSeverity::Warning, "ir.multi-assign", DefLoc[Temp],
               "temporary '" + Temp + "' has " + std::to_string(Count) +
                   " static definition sites (expected single assignment)");
  }

  void checkUseBeforeDef(const std::vector<StmtPtr> &Block,
                         std::set<std::string> &Defined) {
    for (const StmtPtr &SP : Block) {
      const Stmt &S = *SP;
      std::vector<const Operand *> Uses;
      collectUses(S, Uses);
      for (const Operand *U : Uses)
        if (isTemp(U->Name) && !Defined.count(U->Name))
          report(DiagSeverity::Error, "ir.use-before-def", S.Loc,
                 "temporary '" + U->Name + "' is used before any definition");
      if (S.K == StmtKind::If) {
        std::set<std::string> ThenDefs = Defined, ElseDefs = Defined;
        checkUseBeforeDef(S.Then, ThenDefs);
        checkUseBeforeDef(S.Else, ElseDefs);
        // The join sees the union: the ternary lowering defines the same
        // temp in both branches, and downstream code only reads temps that
        // some path defined (over-approximating keeps this check sound for
        // the normalizer's output without path-sensitivity).
        for (const std::string &D : ThenDefs)
          Defined.insert(D);
        for (const std::string &D : ElseDefs)
          Defined.insert(D);
      } else if (S.K == StmtKind::While) {
        // Loop bodies are analyzed to fixpoint: a temp defined late in the
        // body is defined on the second iteration's early reads. Pre-seed
        // with the body's definitions to match that semantics.
        std::set<std::string> BodyDefs = Defined;
        std::map<std::string, unsigned> Counts;
        std::map<std::string, SourceLocation> Locs;
        countDefs(S.Body, Counts, Locs);
        for (const auto &[Name, Count] : Counts)
          BodyDefs.insert(Name);
        checkUseBeforeDef(S.Body, BodyDefs);
        for (const std::string &D : BodyDefs)
          Defined.insert(D);
      } else if (!S.Target.empty()) {
        Defined.insert(S.Target);
      }
    }
  }

  /// Static definition-site counts; the two branches of one `if` merge by
  /// max (the ternary join assigns the same temp on both sides).
  void countDefs(const std::vector<StmtPtr> &Block,
                 std::map<std::string, unsigned> &Counts,
                 std::map<std::string, SourceLocation> &Locs) {
    for (const StmtPtr &SP : Block) {
      const Stmt &S = *SP;
      if (S.K == StmtKind::If) {
        std::map<std::string, unsigned> T, E;
        countDefs(S.Then, T, Locs);
        countDefs(S.Else, E, Locs);
        for (const auto &[Name, C] : T)
          Counts[Name] += std::max(C, E.count(Name) ? E[Name] : 0u);
        for (const auto &[Name, C] : E)
          if (!T.count(Name))
            Counts[Name] += C;
      } else if (S.K == StmtKind::While) {
        countDefs(S.Body, Counts, Locs);
      } else if (S.Async == AsyncRole::PromiseJoin) {
        // The async lowering's promise-join deliberately reassigns the
        // original call's target (x := x promise-join %p) — not a
        // normalizer bug.
      } else if (!S.Target.empty() && isTemp(S.Target)) {
        if (++Counts[S.Target] == 1)
          Locs.emplace(S.Target, S.Loc);
      }
    }
  }

  //===------------------------------------------------------------------===//
  // CFG checks
  //===------------------------------------------------------------------===//

  void checkCFG(const cfg::ModuleCFG &M) {
    checkFunctionCFG("<top-level>", M.TopLevel);
    for (const auto &[Name, FC] : M.Functions)
      checkFunctionCFG(Name, FC);
  }

  void checkFunctionCFG(const std::string &Name, const cfg::FunctionCFG &FC) {
    for (cfg::BlockId B : FC.unreachableBlocks()) {
      const cfg::BasicBlock &BB = FC.block(B);
      SourceLocation Loc;
      if (!BB.Statements.empty() && BB.Statements.front())
        Loc = BB.Statements.front()->loc();
      report(DiagSeverity::Warning, "cfg.unreachable-block", Loc,
             "basic block b" + std::to_string(B) + " in '" + Name +
                 "' is unreachable from the entry (dead code)");
    }
  }

  //===------------------------------------------------------------------===//
  // Walk helper
  //===------------------------------------------------------------------===//

  template <typename Fn>
  static void walkStmts(const std::vector<StmtPtr> &Block, Fn &&Visit) {
    for (const StmtPtr &SP : Block) {
      Visit(*SP);
      walkStmts(SP->Then, Visit);
      walkStmts(SP->Else, Visit);
      walkStmts(SP->Body, Visit);
    }
  }
};

} // namespace

std::unique_ptr<Pass> lint::createIRVerifierPass() {
  return std::make_unique<IRVerifier>();
}
