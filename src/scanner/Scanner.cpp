//===- scanner/Scanner.cpp - The Graph.js scanning pipeline ----------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "scanner/Scanner.h"

#include "analysis/CallGraph.h"
#include "analysis/PackageGraph.h"
#include "analysis/TaintSummary.h"
#include "core/AsyncLower.h"
#include "core/Normalizer.h"
#include "frontend/Parser.h"
#include "lint/PassManager.h"
#include "obs/Histogram.h"
#include "obs/Trace.h"
#include "support/Deadline.h"
#include "support/JSON.h"
#include "support/Subprocess.h"
#include "support/Timer.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <functional>

using namespace gjs;
using namespace gjs::scanner;

//===----------------------------------------------------------------------===//
// ScanResult predicates
//===----------------------------------------------------------------------===//

bool ScanResult::parseFailed() const {
  for (const ScanError &E : Errors)
    if (E.Kind == ScanErrorKind::ParseError)
      return true;
  return false;
}

bool ScanResult::timedOut() const {
  for (const ScanError &E : Errors)
    if (E.isTimeout())
      return true;
  return false;
}

bool ScanResult::timedOutIn(ScanPhase P) const {
  for (const ScanError &E : Errors)
    if (E.Phase == P && E.isTimeout())
      return true;
  return false;
}

bool ScanResult::faulted() const {
  for (const ScanError &E : Errors)
    if (E.Kind == ScanErrorKind::InjectedFault)
      return true;
  return false;
}

const ScanError *ScanResult::firstTimeout() const {
  for (const ScanError &E : Errors)
    if (E.isTimeout())
      return &E;
  return nullptr;
}

std::string ScanResult::errorSummary() const {
  return Errors.empty() ? std::string() : Errors.front().str();
}

//===----------------------------------------------------------------------===//
// FaultPlan
//===----------------------------------------------------------------------===//

bool FaultPlan::parse(const std::string &Spec, FaultPlan &Out,
                      std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg + " in fault spec '" + Spec +
               "' (expected <phase>:<fail|stall|crash|hang|oom>[:<n>|@<name>])";
    return false;
  };
  size_t C1 = Spec.find(':');
  if (C1 == std::string::npos)
    return Fail("missing ':'");
  if (!scanPhaseFromName(Spec.substr(0, C1), Out.Phase))
    return Fail("unknown phase '" + Spec.substr(0, C1) + "'");
  // The action ends at the next ':' (index target) or '@' (name target).
  size_t C2 = Spec.find_first_of(":@", C1 + 1);
  std::string Action = Spec.substr(
      C1 + 1, C2 == std::string::npos ? std::string::npos : C2 - C1 - 1);
  if (Action == "fail")
    Out.Kind = Action::Fail;
  else if (Action == "stall")
    Out.Kind = Action::Stall;
  else if (Action == "crash")
    Out.Kind = Action::Crash;
  else if (Action == "hang")
    Out.Kind = Action::Hang;
  else if (Action == "oom")
    Out.Kind = Action::Oom;
  else
    return Fail("unknown action '" + Action + "'");
  Out.Package = 0;
  Out.PackageName.clear();
  if (C2 != std::string::npos) {
    std::string N = Spec.substr(C2 + 1);
    if (Spec[C2] == '@') {
      if (N.empty())
        return Fail("empty package name");
      Out.PackageName = N;
      return true;
    }
    if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos)
      return Fail("bad package index '" + N + "'");
    Out.Package = static_cast<unsigned>(std::stoul(N));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Pipeline helpers
//===----------------------------------------------------------------------===//

namespace {

/// Runs the MDG well-formedness pass and the call-graph/summary checker
/// over a freshly built graph (ScanOptions::SelfCheck).
std::vector<lint::Finding>
runSelfCheck(const analysis::BuildResult &Build,
             const std::vector<const core::Program *> &Programs,
             const std::vector<std::string> &Stems,
             const queries::SinkConfig &Sinks,
             const analysis::PackageGraph *Packages = nullptr) {
  lint::PassManager PM;
  PM.addPass(lint::createMDGCheckPass());
  PM.addPass(lint::createAsyncPass());
  PM.addPass(lint::createCallGraphPass());
  if (Packages)
    PM.addPass(lint::createPkgGraphPass());
  lint::LintContext Ctx;
  Ctx.Build = &Build;
  Ctx.Programs = Programs;
  Ctx.Stems = Stems;
  Ctx.Sinks = &Sinks;
  Ctx.Packages = Packages;
  if (Programs.size() == 1)
    Ctx.Program = Programs[0];
  return PM.run(Ctx).findings();
}

/// Module stem used for require-target matching (mirrors the builder's).
std::string stemOf(const std::string &Name) {
  std::string S = Name;
  size_t Slash = S.find_last_of('/');
  if (Slash != std::string::npos)
    S = S.substr(Slash + 1);
  if (S.size() > 3 && S.compare(S.size() - 3, 3, ".js") == 0)
    S = S.substr(0, S.size() - 3);
  return S;
}

/// Orders modules dependencies-first (Kahn); cycles keep input order.
std::vector<size_t>
topoOrder(const std::vector<std::unique_ptr<core::Program>> &Programs,
          const std::vector<std::string> &Stems) {
  size_t N = Programs.size();
  // Requires[i] = indices of local modules that module i requires.
  std::vector<std::vector<size_t>> Requires(N);
  std::vector<size_t> InDegree(N, 0);
  std::function<void(const std::vector<core::StmtPtr> &, size_t)> Collect =
      [&](const std::vector<core::StmtPtr> &Block, size_t I) {
        for (const core::StmtPtr &S : Block) {
          if (!S->RequireModule.empty()) {
            std::string Stem = stemOf(S->RequireModule);
            for (size_t J = 0; J < N; ++J)
              if (J != I && Stems[J] == Stem)
                Requires[I].push_back(J);
          }
          Collect(S->Then, I);
          Collect(S->Else, I);
          Collect(S->Body, I);
          if (S->K == core::StmtKind::FuncDef && S->Func)
            Collect(S->Func->Body, I);
        }
      };
  for (size_t I = 0; I < N; ++I)
    if (Programs[I])
      Collect(Programs[I]->TopLevel, I);
  for (size_t I = 0; I < N; ++I)
    InDegree[I] = Requires[I].size();

  std::vector<size_t> Order;
  std::vector<bool> Done(N, false);
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (size_t I = 0; I < N; ++I) {
      if (Done[I] || InDegree[I] != 0)
        continue;
      Order.push_back(I);
      Done[I] = true;
      Progress = true;
      for (size_t J = 0; J < N; ++J)
        if (!Done[J])
          for (size_t Dep : Requires[J])
            if (Dep == I && InDegree[J] > 0)
              --InDegree[J];
    }
  }
  for (size_t I = 0; I < N; ++I)
    if (!Done[I])
      Order.push_back(I); // Cycles: input order.
  return Order;
}

/// The Oom fault action: allocate-and-touch until the allocator dies. With
/// a worker memory rlimit the failure arrives as WorkerOomExit (via the
/// worker's new_handler) or std::bad_alloc long before the cap below; the
/// cap bounds the storm on unlimited machines (and under ASan, where
/// RLIMIT_AS cannot be applied) by self-reporting the OOM deterministically
/// instead of actually exhausting the host.
[[noreturn]] void allocationStorm() {
  constexpr size_t ChunkBytes = 16u << 20;
  constexpr int MaxChunks = 24; // 384 MiB ceiling before self-report.
  std::vector<char *> Storm;
  for (int I = 0; I < MaxChunks; ++I) {
    char *P = new char[ChunkBytes];
    for (size_t J = 0; J < ChunkBytes; J += 4096)
      P[J] = static_cast<char>(J);
    Storm.push_back(P);
  }
  std::_Exit(WorkerOomExit);
}

/// The first error diagnostic's message, or a generic fallback.
std::string firstErrorMessage(const DiagnosticEngine &Diags) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Severity == DiagSeverity::Error)
      return D.str();
  return "parse failed";
}

/// The first error diagnostic's source position (the offending token), so
/// ScanError carries structured line/column for corpus triage.
SourceLocation firstErrorLoc(const DiagnosticEngine &Diags) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Severity == DiagSeverity::Error)
      return D.Loc;
  return SourceLocation();
}

} // namespace

//===----------------------------------------------------------------------===//
// Scanner
//===----------------------------------------------------------------------===//

Scanner::Scanner(ScanOptions Options) : Options(std::move(Options)) {}

ScanResult Scanner::runAttempt(const std::vector<SourceFile> &Files,
                               const ScanOptions &Cfg, bool FaultArmed,
                               unsigned Level, const PackageLinkSpec *Link) {
  ScanResult Out;
  Timer Phase;
  obs::TraceRecorder *TR = Cfg.Trace;
  obs::counters::ScanAttempts.add();
  obs::Span AttemptSpan(TR, "attempt");
  AttemptSpan.arg("level", static_cast<uint64_t>(Level));
  AttemptSpan.arg("backend",
                  Cfg.Backend == QueryBackend::GraphDB ? "graphdb" : "native");

  // One deadline for the whole attempt, threaded through every phase. An
  // inactive budget yields a never-expiring token, which stall faults can
  // still force-expire.
  Deadline D = Deadline::combined(Cfg.Deadline.WallSeconds,
                                  Cfg.Deadline.WorkUnits);

  // Fires the configured fault at a phase boundary. A Fail fault kills the
  // phase outright (returns true: skip it); a Stall fault models a hang the
  // deadline has to kill, so it force-expires the deadline and lets the
  // phase's own checkpoints abort it. The process-fatal actions never
  // return: Crash aborts, Hang spins uninterruptibly, Oom storms the
  // allocator — containable only across a process boundary (the
  // multi-process batch supervisor).
  auto inject = [&](ScanPhase P) -> bool {
    if (!FaultArmed || FaultSpent || !Cfg.Fault || Cfg.Fault->Phase != P)
      return false;
    FaultSpent = true;
    switch (Cfg.Fault->Kind) {
    case FaultPlan::Action::Stall:
      D.expireNow(Deadline::Reason::Forced);
      return false;
    case FaultPlan::Action::Crash:
      std::abort();
    case FaultPlan::Action::Hang:
      for (volatile uint64_t Spin = 0;;)
        ++Spin;
    case FaultPlan::Action::Oom:
      allocationStorm();
    case FaultPlan::Action::Fail:
      break;
    }
    Out.Errors.push_back({P, ScanErrorKind::InjectedFault,
                          "injected fault: phase failed", ""});
    return true;
  };

  // Attributes the deadline's (single, sticky) expiry to the first phase
  // that observes it — the per-phase timeout attribution the batch journal
  // and the degradation ladder consume.
  bool DeadlineNoted = false;
  auto noteDeadline = [&](ScanPhase P) {
    if (DeadlineNoted || !D.expired())
      return;
    DeadlineNoted = true;
    const char *Why = D.reason() == Deadline::Reason::Work
                          ? "scan work budget exhausted"
                      : D.reason() == Deadline::Reason::WallClock
                          ? "wall-clock deadline expired"
                          : "deadline forced expired (stalled phase)";
    Out.Errors.push_back({P, kindOfDeadline(D.reason()), Why, ""});
  };

  // Phase 1: parse. A file that fails to parse is skipped with a per-file
  // error; the rest of the package is still scanned and linked.
  std::vector<std::string> Stems(Files.size());
  std::vector<std::unique_ptr<ast::Program>> ASTs(Files.size());
  {
    obs::Span ParseSpan(TR, "parse");
    if (!inject(ScanPhase::Parse)) {
      for (size_t I = 0; I < Files.size(); ++I) {
        Stems[I] = stemOf(Files[I].Name);
        if (D.expired())
          break; // Remaining files stay unparsed; attributed below.
        obs::Span FileSpan(TR, "file");
        FileSpan.arg("name", Files[I].Name.empty() ? "<source>"
                                                   : Files[I].Name);
        DiagnosticEngine Diags;
        auto Module = parseJS(Files[I].Contents, Diags, &D, TR);
        if (Diags.hasErrors()) {
          Out.Errors.push_back({ScanPhase::Parse, ScanErrorKind::ParseError,
                                firstErrorMessage(Diags), Files[I].Name,
                                firstErrorLoc(Diags)});
          FileSpan.arg("error", "parse failed");
          continue;
        }
        size_t Nodes = ast::countNodes(*Module);
        Out.ASTNodes += Nodes;
        obs::counters::AstNodes.add(Nodes);
        FileSpan.arg("ast_nodes", static_cast<uint64_t>(Nodes));
        ASTs[I] = std::move(Module);
      }
    }
    ParseSpan.arg("files", static_cast<uint64_t>(Files.size()));
  }
  noteDeadline(ScanPhase::Parse);

  // Phase 2: normalize to Core JavaScript. Function names and statement
  // indices get per-module disjoint ranges (they are allocation keys); the
  // single-file form keeps unprefixed names (the documented scanSource
  // behavior tests and examples rely on).
  std::vector<std::unique_ptr<core::Program>> Programs(Files.size());
  {
    obs::Span NormSpan(TR, "normalize");
    if (!inject(ScanPhase::Normalize) && !D.expired()) {
      core::StmtIndex NextIndex = 1;
      bool SingleFile = Files.size() == 1 && !Link;
      for (size_t I = 0; I < Files.size(); ++I) {
        if (!ASTs[I])
          continue;
        if (D.expired())
          break;
        DiagnosticEngine Diags;
        // Dependency-tree scans qualify the prefix with the owning package:
        // two packages both shipping a `lib.js` must not collide in the
        // function-name namespace (it keys call-graph and allocation maps).
        std::string Prefix = SingleFile ? ""
                             : Link ? Link->PkgOf[I] + "$" + Stems[I] + "$"
                                    : Stems[I] + "$";
        core::Normalizer Norm(Diags, Prefix, NextIndex, &D);
        Programs[I] = Norm.normalize(*ASTs[I]);
        // Async lowering extends this module's statement-index range, so it
        // must run before the next module's range is carved out.
        if (Cfg.AsyncLower) {
          obs::Span LowerSpan(TR, "lower");
          Timer LowerTimer;
          core::AsyncLowerStats AS = core::lowerAsync(*Programs[I], Prefix, &D);
          Out.Times.Lower += LowerTimer.elapsedSeconds();
          obs::counters::AsyncAwaitsLowered.add(AS.AwaitsLowered);
          obs::counters::AsyncReactionsLinked.add(AS.ReactionsLinked);
          obs::counters::AsyncCallbacksUnresolved.add(AS.CallbacksUnresolved);
          LowerSpan.arg("awaits_lowered", AS.AwaitsLowered);
          LowerSpan.arg("reactions_linked", AS.ReactionsLinked);
          LowerSpan.arg("callbacks_unresolved", AS.CallbacksUnresolved);
        }
        NextIndex = Programs[I]->NumIndices + 1;
        size_t Stmts = core::countStmts(Programs[I]->TopLevel);
        for (const auto &[Name, Fn] : Programs[I]->Functions)
          Stmts += core::countStmts(Fn->Body);
        Out.CoreStmts += Stmts;
        obs::counters::CoreStmts.add(Stmts);
      }
    }
    NormSpan.arg("core_stmts", static_cast<uint64_t>(Out.CoreStmts));
  }
  noteDeadline(ScanPhase::Normalize);
  Out.Times.Parse = Phase.elapsedSeconds() - Out.Times.Lower;

  // Pre-query pruning (summary stage): a static call graph plus
  // bottom-up per-function taint summaries over the normalized Core IR
  // decide, per vulnerability class, whether the exported API can reach
  // any matching sink at all. A pruned class's query is skipped; when
  // every class is pruned under the GraphDB backend the database import
  // itself is skipped. Soundness: the summaries over-approximate the MDG
  // detectors (any unresolved callee on a relevant path blocks pruning),
  // so the report set is identical with and without pruning — asserted
  // by the detection-neutrality test in tests/test_summaries.cpp.
  std::vector<const core::Program *> PruneMods;
  std::vector<std::string> PruneStems;
  analysis::ModuleLinkInfo TreeLink;
  if (Link) {
    // The cross-package soundness valve: missing/unparseable dependencies,
    // plus every file that failed to parse (or was skipped by the
    // deadline) — its package name and stem must classify as unresolved.
    TreeLink.ForceUnresolved = Link->MissingDeps;
    for (size_t I = 0; I < Files.size(); ++I)
      if (!Programs[I]) {
        TreeLink.ForceUnresolved.insert(Link->PkgOf[I]);
        TreeLink.ForceUnresolved.insert(Stems[I]);
      }
  }
  for (size_t I = 0; I < Programs.size(); ++I)
    if (Programs[I]) {
      if (Link) {
        TreeLink.PkgOf.push_back(Link->PkgOf[I]);
        if (Link->IsMain[I] &&
            !TreeLink.ForceUnresolved.count(Link->PkgOf[I]))
          TreeLink.MainModuleOf.emplace(Link->PkgOf[I], PruneMods.size());
      }
      PruneMods.push_back(Programs[I].get());
      PruneStems.push_back(Stems[I]);
    }
  std::array<bool, queries::NumVulnTypes> Enabled;
  Enabled.fill(true);
  if (Cfg.Prune) {
    obs::Span PruneSpan(TR, "prune");
    if (!PruneMods.empty()) {
      analysis::CallGraph CG = analysis::CallGraph::build(
          PruneMods, PruneStems, Cfg.Builder.FallbackAllFunctionsExported,
          Link ? &TreeLink : nullptr);
      analysis::SummarySet Sums = analysis::computeSummaries(
          CG, PruneMods, queries::toSinkTable(Cfg.Sinks));
      analysis::PruneDecision PD = analysis::decidePruning(
          CG, Sums, Link && !TreeLink.ForceUnresolved.empty());
      Out.PrunedQueries = PD.numPruned();
      Out.PruneReason = PD.str();
      for (int C = 0; C < queries::NumVulnTypes; ++C)
        Enabled[C] = !PD.Prunable[C];
      obs::counters::SummariesComputed.add(Sums.Summaries.size());
      obs::counters::CallGraphEdgesResolved.add(CG.numResolvedEdges());
      obs::counters::CallGraphEdgesUnresolved.add(CG.numUnresolvedSites());
      obs::counters::PruneQueriesSkipped.add(PD.numPruned());
      PruneSpan.arg("functions", static_cast<uint64_t>(CG.functions().size()));
      PruneSpan.arg("pruned", static_cast<uint64_t>(PD.numPruned()));
      PruneSpan.arg("decision", PD.str());
    }
  }

  // Phase 3: MDG construction over all parsed modules, deps first.
  // Configured sanitizers become builder-level taint barriers (§6).
  Phase.reset();
  std::vector<analysis::PackageModule> Modules;
  if (Link) {
    // A flattened dependency tree arrives in bottom-up link order already
    // (PackageGraph::flatten); the builder's second pass closes any
    // remaining (cyclic) links.
    for (size_t I = 0; I < Programs.size(); ++I)
      if (Programs[I])
        Modules.push_back({Files[I].Name, Programs[I].get(), Link->PkgOf[I],
                           static_cast<bool>(Link->IsMain[I])});
  } else {
    for (size_t I : topoOrder(Programs, Stems))
      if (Programs[I])
        Modules.push_back({Files[I].Name, Programs[I].get()});
  }

  analysis::BuildResult Build;
  bool HaveGraph = false;
  {
    obs::Span BuildSpan(TR, "build");
    if (!inject(ScanPhase::Build) && !Modules.empty()) {
      analysis::BuilderOptions BO = Cfg.Builder;
      BO.ScanDeadline = &D;
      for (const std::string &Name : Cfg.Sinks.sanitizers())
        BO.Sanitizers.insert(Name);
      if (Files.size() == 1 && !Link) {
        Build = analysis::buildMDG(*Programs[0], BO);
      } else {
        analysis::MDGBuilder Builder(BO);
        Build = Builder.buildPackage(Modules, Link ? &TreeLink : nullptr);
      }
      HaveGraph = true;
      Out.MDGNodes = Build.Graph.numNodes();
      Out.MDGEdges = Build.Graph.numEdges();
      Out.BuildWork = Build.WorkDone;
      BuildSpan.arg("mdg_nodes", static_cast<uint64_t>(Out.MDGNodes));
      BuildSpan.arg("mdg_edges", static_cast<uint64_t>(Out.MDGEdges));
      BuildSpan.arg("work", Out.BuildWork);
      // The builder's own work budget (no shared deadline involved) is a
      // Build-phase Budget error.
      if (Build.TimedOut && !D.expired())
        Out.Errors.push_back({ScanPhase::Build, ScanErrorKind::Budget,
                              "builder work budget exhausted (work=" +
                                  std::to_string(Build.WorkDone) + ")",
                              ""});
      if (Cfg.SelfCheck)
        Out.SelfCheckFindings =
            runSelfCheck(Build, PruneMods, PruneStems, Cfg.Sinks,
                         Link ? Link->Packages : nullptr);
    }
  }
  noteDeadline(ScanPhase::Build);
  Out.Times.GraphBuild = Phase.elapsedSeconds();

  // Phases 4+5: import into the database and run the queries. The built-in
  // queries are schema-validated first: a malformed query must fail the
  // scan loudly, not return an empty (vacuously clean) report set.
  bool AllPruned = true;
  for (bool En : Enabled)
    AllPruned = AllPruned && !En;
  if (HaveGraph) {
    if (Cfg.Backend == QueryBackend::GraphDB) {
      if (AllPruned) {
        // Every class was pruned: the summary stage proved the detectors
        // cannot report anything, so the schema validation, database
        // import, and query phases are all skipped.
        Out.PruneSkippedImport = true;
        obs::counters::PruneImportsSkipped.add();
      } else if (!queries::GraphDBRunner::validateBuiltinQueries(
                     Cfg.Sinks, &Out.SchemaError)) {
        Out.Errors.push_back({ScanPhase::Query, ScanErrorKind::Schema,
                              Out.SchemaError, ""});
      } else if (!inject(ScanPhase::Import)) {
        Phase.reset();
        graphdb::EngineOptions EO = Cfg.Engine;
        EO.ScanDeadline = &D;
        EO.Trace = TR;
        obs::Span ImportSpan(TR, "import");
        queries::GraphDBRunner Runner(Build, EO);
        ImportSpan.arg("db_nodes",
                       static_cast<uint64_t>(Runner.database().numNodes()));
        ImportSpan.arg("db_rels",
                       static_cast<uint64_t>(Runner.database().numRels()));
        ImportSpan.close();
        Out.Times.DbImport = Phase.elapsedSeconds();
        noteDeadline(ScanPhase::Import);

        if (!inject(ScanPhase::Query)) {
          Phase.reset();
          obs::Span QuerySpan(TR, "query");
          queries::DetectStats Stats;
          Out.Reports = Runner.detect(Cfg.Sinks, &Stats, Enabled);
          QuerySpan.arg("reports", static_cast<uint64_t>(Out.Reports.size()));
          QuerySpan.arg("work", Stats.QueryWork);
          QuerySpan.close();
          Out.Times.Query = Phase.elapsedSeconds();
          Out.QueryWork = Stats.QueryWork;
          noteDeadline(ScanPhase::Query);
          // The query engine's own step budget (deadline still live) is a
          // Query-phase Budget error — distinct from a graph-construction
          // timeout.
          if (Stats.TimedOut && !D.expired())
            Out.Errors.push_back({ScanPhase::Query, ScanErrorKind::Budget,
                                  "query step budget exhausted (steps=" +
                                      std::to_string(Stats.QueryWork) + ")",
                                  ""});
        }
      }
      // Partial-results guarantee (the Graph.js vs. ODGen difference,
      // §5.2): when the deadline killed the DB-side phases before any
      // report came back, still query the in-memory partial MDG with the
      // native traversals, which are bounded by the (partial) graph size.
      if (!AllPruned && D.expired() && Out.Reports.empty()) {
        Phase.reset();
        obs::Span NativeSpan(TR, "native-query");
        NativeSpan.arg("fallback", "partial-results");
        Out.Reports = queries::detectNative(Build, Cfg.Sinks, Enabled);
        NativeSpan.arg("reports", static_cast<uint64_t>(Out.Reports.size()));
        NativeSpan.close();
        Out.Times.Query += Phase.elapsedSeconds();
      }
    } else if (!AllPruned && !inject(ScanPhase::Query)) {
      Phase.reset();
      obs::Span NativeSpan(TR, "native-query");
      Out.Reports = queries::detectNative(Build, Cfg.Sinks, Enabled);
      NativeSpan.arg("reports", static_cast<uint64_t>(Out.Reports.size()));
      NativeSpan.close();
      Out.Times.Query = Phase.elapsedSeconds();
      noteDeadline(ScanPhase::Query);
    }
  }

  if (Link) {
    std::set<std::string> LinkedPkgs;
    for (size_t I = 0; I < Programs.size(); ++I)
      if (Programs[I])
        LinkedPkgs.insert(Link->PkgOf[I]);
    Out.LinkedPackages = static_cast<unsigned>(LinkedPkgs.size());
    Out.MissingDeps.assign(Link->MissingDeps.begin(),
                           Link->MissingDeps.end());
  }
  Out.DeadlineWork = D.workDone();
  obs::counters::DeadlineUnits.add(Out.DeadlineWork);
  return Out;
}

bool Scanner::wantsDegradation(const ScanResult &R) {
  // Retry on containable failures: timeouts (deadline or budget) and
  // injected faults. Parse and schema errors are deterministic — a cheaper
  // rerun cannot fix malformed input or a bad query.
  for (const ScanError &E : R.Errors)
    if (E.isTimeout() || E.Kind == ScanErrorKind::InjectedFault)
      return true;
  return false;
}

ScanOptions Scanner::degrade(const ScanOptions &Base, unsigned Level) {
  ScanOptions Cfg = Base;
  // Level 1: drop the graph database; run the Table 2 detectors as native
  // traversals (no import phase, no query-engine steps).
  Cfg.Backend = QueryBackend::Native;
  if (Level >= 2) {
    // Level 2: also cheapen MDG construction itself.
    if (Cfg.Builder.WorkBudget)
      Cfg.Builder.WorkBudget = std::max<uint64_t>(1, Cfg.Builder.WorkBudget / 2);
    Cfg.Builder.MaxInlineDepth = std::min(Cfg.Builder.MaxInlineDepth, 2u);
    Cfg.Builder.MaxFixpointIters = std::min(Cfg.Builder.MaxFixpointIters, 8u);
  }
  return Cfg;
}

ScanResult Scanner::scanPackage(const std::vector<SourceFile> &Files) {
  return scanWithLadder(Files, nullptr);
}

ScanResult Scanner::scanDependencyTree(const analysis::PackageGraph &G) {
  analysis::PackageGraph::FlatPlan Plan = G.flatten();
  std::vector<SourceFile> Files;
  PackageLinkSpec Link;
  Link.MissingDeps = Plan.MissingDeps;
  Link.Packages = &G;
  for (const analysis::PackageGraph::FlatModule &M : Plan.Modules) {
    Files.push_back({M.Path, *M.Contents});
    Link.PkgOf.push_back(M.Pkg);
    Link.IsMain.push_back(M.IsMain);
  }
  ScanResult Out = scanWithLadder(Files, &Link);
  // An empty tree (every package missing) never reaches runAttempt's
  // accounting; report the missing names regardless.
  if (Out.MissingDeps.empty() && !Plan.MissingDeps.empty())
    Out.MissingDeps.assign(Plan.MissingDeps.begin(), Plan.MissingDeps.end());
  return Out;
}

ScanResult Scanner::scanWithLadder(const std::vector<SourceFile> &Files,
                                   const PackageLinkSpec *Link) {
  unsigned Seq = ScansDone++;
  auto Armed = [&] {
    return Options.Fault && !FaultSpent && Options.Fault->Package == Seq;
  };

  obs::Span PackageSpan(Options.Trace, "package");
  PackageSpan.arg("files", static_cast<uint64_t>(Files.size()));
  obs::CounterSnapshot Before;
  if (obs::countersEnabled())
    Before = obs::snapshotCounters();

  // AttemptLog keeps every attempt's cost so the timing attribution
  // survives the ladder (only the final attempt's metrics end up in
  // Times). TimedOut must reflect the attempt's *own* errors, not the
  // inherited ones — hence it is captured before the error splice.
  auto recordOf = [](const ScanResult &R, unsigned Level) {
    AttemptRecord Rec;
    Rec.Level = Level;
    Rec.Times = R.Times;
    Rec.DeadlineWork = R.DeadlineWork;
    Rec.TimedOut = R.timedOut();
    return Rec;
  };

  ScanResult Out = runAttempt(Files, Options, Armed(), 0, Link);
  Out.CumulativeTimes = Out.Times;
  Out.AttemptLog.push_back(recordOf(Out, 0));

  // Degradation ladder: a containable failure gets retried with cheaper
  // settings (a fresh deadline each attempt). Errors accumulate across
  // attempts; the final attempt's reports and metrics win, but
  // CumulativeTimes and AttemptLog keep every attempt's cost.
  unsigned Level = 0;
  while (wantsDegradation(Out) && Level < Options.MaxDegradation) {
    ++Level;
    obs::counters::ScanRetries.add();
    ScanResult Retry = runAttempt(Files, degrade(Options, Level), Armed(),
                                  Level, Link);
    AttemptRecord Rec = recordOf(Retry, Level);
    Retry.Errors.insert(Retry.Errors.begin(), Out.Errors.begin(),
                        Out.Errors.end());
    Retry.Attempts = Out.Attempts + 1;
    Retry.Retries = Level;
    Retry.Degradation = Level;
    Retry.CumulativeTimes = Out.CumulativeTimes;
    Retry.CumulativeTimes.accumulate(Retry.Times);
    Retry.AttemptLog = std::move(Out.AttemptLog);
    Retry.AttemptLog.push_back(Rec);
    Out = std::move(Retry);
  }

  if (obs::countersEnabled())
    Out.Counters = obs::counterDelta(Before, obs::snapshotCounters());
  // Phase latency distributions: cumulative across ladder attempts, so a
  // degraded package attributes its full (retried) cost to each phase.
  obs::hists::PhaseParse.recordSeconds(Out.CumulativeTimes.Parse);
  obs::hists::PhaseLower.recordSeconds(Out.CumulativeTimes.Lower);
  obs::hists::PhaseBuild.recordSeconds(Out.CumulativeTimes.GraphBuild);
  obs::hists::PhaseImport.recordSeconds(Out.CumulativeTimes.DbImport);
  obs::hists::PhaseQuery.recordSeconds(Out.CumulativeTimes.Query);
  PackageSpan.arg("attempts", static_cast<uint64_t>(Out.Attempts));
  PackageSpan.arg("reports", static_cast<uint64_t>(Out.Reports.size()));
  return Out;
}

ScanResult Scanner::scanSource(const std::string &Source) {
  return scanPackage({{"", Source}});
}

std::string scanner::reportsToJSON(
    const std::vector<queries::VulnReport> &Reports) {
  json::Array Arr;
  for (const queries::VulnReport &R : Reports) {
    json::Object O;
    O["cwe"] = json::Value(queries::cweOf(R.Type));
    O["type"] = json::Value(queries::vulnTypeName(R.Type));
    O["line"] = json::Value(static_cast<unsigned>(R.SinkLoc.Line));
    if (!R.SinkName.empty())
      O["sink"] = json::Value(R.SinkName);
    if (!R.SinkPath.empty())
      O["sink_path"] = json::Value(R.SinkPath);
    Arr.push_back(json::Value(std::move(O)));
  }
  return json::Value(std::move(Arr)).str(2);
}
