//===- scanner/Scanner.cpp - The Graph.js scanning pipeline ----------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "scanner/Scanner.h"

#include "core/Normalizer.h"
#include "frontend/Parser.h"
#include "lint/PassManager.h"
#include "support/JSON.h"
#include "support/Timer.h"

#include <functional>

using namespace gjs;
using namespace gjs::scanner;

Scanner::Scanner(ScanOptions Options) : Options(std::move(Options)) {}

namespace {

/// Runs the MDG well-formedness pass over a freshly built graph
/// (ScanOptions::SelfCheck).
std::vector<lint::Finding> runSelfCheck(const analysis::BuildResult &Build) {
  lint::PassManager PM;
  PM.addPass(lint::createMDGCheckPass());
  lint::LintContext Ctx;
  Ctx.Build = &Build;
  return PM.run(Ctx).findings();
}

} // namespace

ScanResult Scanner::scanSource(const std::string &Source) {
  ScanResult Out;
  Timer Phase;

  // Phase 1: parse + normalize (the MDG generator's front half).
  DiagnosticEngine Diags;
  auto Module = parseJS(Source, Diags);
  if (Diags.hasErrors()) {
    Out.ParseFailed = true;
    Out.Times.Parse = Phase.elapsedSeconds();
    return Out;
  }
  Out.ASTNodes = ast::countNodes(*Module);
  core::Normalizer Norm(Diags);
  auto Prog = Norm.normalize(*Module);
  Out.CoreStmts = core::countStmts(Prog->TopLevel);
  for (const auto &[Name, Fn] : Prog->Functions)
    Out.CoreStmts += core::countStmts(Fn->Body);
  Out.Times.Parse = Phase.elapsedSeconds();

  // Phase 2: MDG construction. Configured sanitizers become builder-level
  // taint barriers (§6).
  Phase.reset();
  analysis::BuilderOptions BO = Options.Builder;
  for (const std::string &Name : Options.Sinks.sanitizers())
    BO.Sanitizers.insert(Name);
  analysis::BuildResult Build = analysis::buildMDG(*Prog, BO);
  Out.Times.GraphBuild = Phase.elapsedSeconds();
  Out.MDGNodes = Build.Graph.numNodes();
  Out.MDGEdges = Build.Graph.numEdges();
  Out.BuildWork = Build.WorkDone;
  Out.TimedOut |= Build.TimedOut;
  if (Options.SelfCheck)
    Out.SelfCheckFindings = runSelfCheck(Build);

  // Phase 3+4: import into the database and run the queries. The built-in
  // queries are schema-validated first: a malformed query must fail the
  // scan loudly, not return an empty (vacuously clean) report set.
  if (Options.Backend == QueryBackend::GraphDB) {
    if (!queries::GraphDBRunner::validateBuiltinQueries(Options.Sinks,
                                                        &Out.SchemaError))
      return Out;
    Phase.reset();
    queries::GraphDBRunner Runner(Build, Options.Engine);
    Out.Times.DbImport = Phase.elapsedSeconds();

    Phase.reset();
    queries::DetectStats Stats;
    Out.Reports = Runner.detect(Options.Sinks, &Stats);
    Out.Times.Query = Phase.elapsedSeconds();
    Out.QueryWork = Stats.QueryWork;
    Out.TimedOut |= Stats.TimedOut;
  } else {
    Phase.reset();
    Out.Reports = queries::detectNative(Build, Options.Sinks);
    Out.Times.Query = Phase.elapsedSeconds();
  }
  return Out;
}

namespace {

/// Module stem used for require-target matching (mirrors the builder's).
std::string stemOf(const std::string &Name) {
  std::string S = Name;
  size_t Slash = S.find_last_of('/');
  if (Slash != std::string::npos)
    S = S.substr(Slash + 1);
  if (S.size() > 3 && S.compare(S.size() - 3, 3, ".js") == 0)
    S = S.substr(0, S.size() - 3);
  return S;
}

/// Orders modules dependencies-first (Kahn); cycles keep input order.
std::vector<size_t>
topoOrder(const std::vector<std::unique_ptr<core::Program>> &Programs,
          const std::vector<std::string> &Stems) {
  size_t N = Programs.size();
  // Requires[i] = indices of local modules that module i requires.
  std::vector<std::vector<size_t>> Requires(N);
  std::vector<size_t> InDegree(N, 0);
  std::function<void(const std::vector<core::StmtPtr> &, size_t)> Collect =
      [&](const std::vector<core::StmtPtr> &Block, size_t I) {
        for (const core::StmtPtr &S : Block) {
          if (!S->RequireModule.empty()) {
            std::string Stem = stemOf(S->RequireModule);
            for (size_t J = 0; J < N; ++J)
              if (J != I && Stems[J] == Stem)
                Requires[I].push_back(J);
          }
          Collect(S->Then, I);
          Collect(S->Else, I);
          Collect(S->Body, I);
          if (S->K == core::StmtKind::FuncDef && S->Func)
            Collect(S->Func->Body, I);
        }
      };
  for (size_t I = 0; I < N; ++I)
    if (Programs[I])
      Collect(Programs[I]->TopLevel, I);
  for (size_t I = 0; I < N; ++I)
    InDegree[I] = Requires[I].size();

  std::vector<size_t> Order;
  std::vector<bool> Done(N, false);
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (size_t I = 0; I < N; ++I) {
      if (Done[I] || InDegree[I] != 0)
        continue;
      Order.push_back(I);
      Done[I] = true;
      Progress = true;
      for (size_t J = 0; J < N; ++J)
        if (!Done[J])
          for (size_t Dep : Requires[J])
            if (Dep == I && InDegree[J] > 0)
              --InDegree[J];
    }
  }
  for (size_t I = 0; I < N; ++I)
    if (!Done[I])
      Order.push_back(I); // Cycles: input order.
  return Order;
}

} // namespace

ScanResult Scanner::scanPackage(const std::vector<SourceFile> &Files) {
  if (Files.size() == 1)
    return scanSource(Files[0].Contents);

  ScanResult Out;
  Timer Phase;

  // Parse + normalize every file; function names and statement indices
  // get per-module disjoint ranges (they are allocation keys).
  std::vector<std::unique_ptr<core::Program>> Programs(Files.size());
  std::vector<std::string> Stems(Files.size());
  core::StmtIndex NextIndex = 1;
  for (size_t I = 0; I < Files.size(); ++I) {
    Stems[I] = stemOf(Files[I].Name);
    DiagnosticEngine Diags;
    auto Module = parseJS(Files[I].Contents, Diags);
    if (Diags.hasErrors()) {
      Out.ParseFailed = true;
      continue;
    }
    Out.ASTNodes += ast::countNodes(*Module);
    core::Normalizer Norm(Diags, Stems[I] + "$", NextIndex);
    Programs[I] = Norm.normalize(*Module);
    NextIndex = Programs[I]->NumIndices + 1;
    Out.CoreStmts += core::countStmts(Programs[I]->TopLevel);
    for (const auto &[Name, Fn] : Programs[I]->Functions)
      Out.CoreStmts += core::countStmts(Fn->Body);
  }
  Out.Times.Parse = Phase.elapsedSeconds();

  // Linked MDG construction over all parsed modules, deps first.
  Phase.reset();
  std::vector<analysis::PackageModule> Modules;
  for (size_t I : topoOrder(Programs, Stems))
    if (Programs[I])
      Modules.push_back({Files[I].Name, Programs[I].get()});
  if (Modules.empty())
    return Out;
  analysis::BuilderOptions BO = Options.Builder;
  for (const std::string &Name : Options.Sinks.sanitizers())
    BO.Sanitizers.insert(Name);
  analysis::MDGBuilder Builder(BO);
  analysis::BuildResult Build = Builder.buildPackage(Modules);
  Out.Times.GraphBuild = Phase.elapsedSeconds();
  Out.MDGNodes = Build.Graph.numNodes();
  Out.MDGEdges = Build.Graph.numEdges();
  Out.BuildWork = Build.WorkDone;
  Out.TimedOut |= Build.TimedOut;
  if (Options.SelfCheck)
    Out.SelfCheckFindings = runSelfCheck(Build);

  if (Options.Backend == QueryBackend::GraphDB) {
    if (!queries::GraphDBRunner::validateBuiltinQueries(Options.Sinks,
                                                        &Out.SchemaError))
      return Out;
    Phase.reset();
    queries::GraphDBRunner Runner(Build, Options.Engine);
    Out.Times.DbImport = Phase.elapsedSeconds();
    Phase.reset();
    queries::DetectStats Stats;
    Out.Reports = Runner.detect(Options.Sinks, &Stats);
    Out.Times.Query = Phase.elapsedSeconds();
    Out.QueryWork = Stats.QueryWork;
    Out.TimedOut |= Stats.TimedOut;
  } else {
    Phase.reset();
    Out.Reports = queries::detectNative(Build, Options.Sinks);
    Out.Times.Query = Phase.elapsedSeconds();
  }
  return Out;
}

std::string scanner::reportsToJSON(
    const std::vector<queries::VulnReport> &Reports) {
  json::Array Arr;
  for (const queries::VulnReport &R : Reports) {
    json::Object O;
    O["cwe"] = json::Value(queries::cweOf(R.Type));
    O["type"] = json::Value(queries::vulnTypeName(R.Type));
    O["line"] = json::Value(static_cast<unsigned>(R.SinkLoc.Line));
    if (!R.SinkName.empty())
      O["sink"] = json::Value(R.SinkName);
    if (!R.SinkPath.empty())
      O["sink_path"] = json::Value(R.SinkPath);
    Arr.push_back(json::Value(std::move(O)));
  }
  return json::Value(std::move(Arr)).str(2);
}
