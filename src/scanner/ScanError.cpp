//===- scanner/ScanError.cpp - Structured scan-failure taxonomy -----------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "scanner/ScanError.h"

using namespace gjs;
using namespace gjs::scanner;

const char *scanner::scanPhaseName(ScanPhase P) {
  switch (P) {
  case ScanPhase::Parse:
    return "parse";
  case ScanPhase::Normalize:
    return "normalize";
  case ScanPhase::Build:
    return "build";
  case ScanPhase::Import:
    return "import";
  case ScanPhase::Query:
    return "query";
  case ScanPhase::Driver:
    return "driver";
  }
  return "unknown";
}

const char *scanner::scanErrorKindName(ScanErrorKind K) {
  switch (K) {
  case ScanErrorKind::ParseError:
    return "parse-error";
  case ScanErrorKind::Deadline:
    return "deadline";
  case ScanErrorKind::Budget:
    return "budget";
  case ScanErrorKind::InjectedFault:
    return "injected-fault";
  case ScanErrorKind::Schema:
    return "schema";
  case ScanErrorKind::Internal:
    return "internal";
  case ScanErrorKind::Crashed:
    return "crashed";
  case ScanErrorKind::KilledOom:
    return "killed-oom";
  case ScanErrorKind::KilledDeadline:
    return "killed-deadline";
  }
  return "unknown";
}

bool scanner::scanPhaseFromName(const std::string &Name, ScanPhase &Out) {
  for (ScanPhase P :
       {ScanPhase::Parse, ScanPhase::Normalize, ScanPhase::Build,
        ScanPhase::Import, ScanPhase::Query, ScanPhase::Driver}) {
    if (Name == scanPhaseName(P)) {
      Out = P;
      return true;
    }
  }
  return false;
}

bool scanner::scanErrorKindFromName(const std::string &Name,
                                    ScanErrorKind &Out) {
  for (ScanErrorKind K :
       {ScanErrorKind::ParseError, ScanErrorKind::Deadline,
        ScanErrorKind::Budget, ScanErrorKind::InjectedFault,
        ScanErrorKind::Schema, ScanErrorKind::Internal, ScanErrorKind::Crashed,
        ScanErrorKind::KilledOom, ScanErrorKind::KilledDeadline}) {
    if (Name == scanErrorKindName(K)) {
      Out = K;
      return true;
    }
  }
  return false;
}

std::string ScanError::str() const {
  std::string S = scanPhaseName(Phase);
  S += ": ";
  S += scanErrorKindName(Kind);
  if (!File.empty()) {
    S += " [";
    S += File;
    S += "]";
  }
  if (Loc.isValid()) {
    S += ":";
    S += Loc.str();
  }
  if (!Detail.empty()) {
    S += ": ";
    S += Detail;
  }
  return S;
}
