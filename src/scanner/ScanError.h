//===- scanner/ScanError.h - Structured scan-failure taxonomy ----*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured error taxonomy of the fault-tolerant scan runtime. A
/// package scan no longer collapses every failure into ParseFailed/TimedOut
/// booleans: each problem is recorded as a ScanError naming the pipeline
/// phase that hit it, the failure kind, and (when applicable) the file.
/// The evaluation's headline robustness claim — Graph.js degrades
/// gracefully under the 5-minute timeout where ODGen fails all-or-nothing
/// (§5.2, §5.5) — needs exactly this attribution: a batch journal entry must
/// say *which phase* of *which package* exhausted the budget, so reruns and
/// the degradation ladder can react per phase.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SCANNER_SCANERROR_H
#define GJS_SCANNER_SCANERROR_H

#include "support/Deadline.h"
#include "support/SourceLocation.h"

#include <string>

namespace gjs {
namespace scanner {

/// The pipeline phases a failure can be attributed to. Driver is the batch
/// runner itself (package-level isolation: a scan that threw).
enum class ScanPhase { Parse, Normalize, Build, Import, Query, Driver };

/// What went wrong. The last three are OS-level verdicts only the
/// multi-process supervisor (driver::ProcessPool) can issue: the failure
/// killed the whole worker process, so no in-process handler saw it.
enum class ScanErrorKind {
  ParseError,     ///< Malformed input (per-file; the file is skipped).
  Deadline,       ///< Wall-clock (or injected-stall) deadline expired.
  Budget,         ///< An abstract work budget was exhausted.
  InjectedFault,  ///< A FaultPlan fired (deterministic fault injection).
  Schema,         ///< A built-in query failed schema validation.
  Internal,       ///< Unexpected failure (e.g. an exception the driver caught).
  Crashed,        ///< Worker died on a signal (SIGSEGV, SIGABRT, ...) or
                  ///< exited without producing a result.
  KilledOom,      ///< Worker ran out of memory: rlimit-attributed allocation
                  ///< failure, or an unexplained SIGKILL (kernel OOM killer).
  KilledDeadline, ///< Worker blew its hard deadline and the supervisor (or
                  ///< the RLIMIT_CPU cap) killed it.
};

/// Stable lowercase names (used in journals and CLI flags).
const char *scanPhaseName(ScanPhase P);
const char *scanErrorKindName(ScanErrorKind K);

/// Parses the names back (for FaultPlan specs and journal-line parsing);
/// false on unknown.
bool scanPhaseFromName(const std::string &Name, ScanPhase &Out);
bool scanErrorKindFromName(const std::string &Name, ScanErrorKind &Out);

/// Maps a Deadline's expiry reason onto the taxonomy: a work-budget expiry
/// is Budget, wall-clock and forced (stall) expiries are Deadline.
inline ScanErrorKind kindOfDeadline(Deadline::Reason R) {
  return R == Deadline::Reason::Work ? ScanErrorKind::Budget
                                     : ScanErrorKind::Deadline;
}

/// One structured failure: which phase, what kind, with detail.
struct ScanError {
  ScanPhase Phase = ScanPhase::Driver;
  ScanErrorKind Kind = ScanErrorKind::Internal;
  std::string Detail;
  /// Per-file attribution (parse errors, per-file deadline hits); empty when
  /// the error concerns the whole package.
  std::string File;
  /// The offending token's position (parse errors): structured line/column
  /// for corpus triage, so consumers need not re-parse Detail. Invalid
  /// (0:0) when the error has no single source position.
  SourceLocation Loc;

  /// "parse: parse-error [a.js]:3:7: expected '(' ...".
  std::string str() const;

  bool isTimeout() const {
    return Kind == ScanErrorKind::Deadline || Kind == ScanErrorKind::Budget;
  }
};

} // namespace scanner
} // namespace gjs

#endif // GJS_SCANNER_SCANERROR_H
