//===- scanner/Scanner.h - The Graph.js scanning pipeline --------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end Graph.js pipeline (§4 Implementation): parse JavaScript,
/// transpile to Core JavaScript, build the MDG, import it into the graph
/// database, and run the vulnerability queries. Reports carry the CWE and
/// the sink line number, which is what the evaluation compares against
/// dataset annotations.
///
/// The scanner is a *fault-tolerant runtime* around that pipeline:
///
///  - One support/Deadline per package bounds every phase together (the
///    evaluation's hard 5-minute per-package timeout, §5.2), combining a
///    wall-clock limit with a deterministic work budget. Each phase
///    checkpoints it cooperatively; ScanResult records which phase hit it
///    as a structured ScanError.
///
///  - A deterministic fault-injection plan (FaultPlan) can fail or stall
///    any phase on the Nth scanned package — how tests prove that every
///    phase's failure is contained.
///
///  - A degradation ladder retries a failed package with cheaper settings
///    (GraphDB backend → native traversals → reduced builder budget) and
///    always queries the partial MDG, reproducing Graph.js's
///    partial-results behavior vs. ODGen's all-or-nothing (§5.2, §5.5).
///
/// Per-phase wall-clock times and graph sizes are recorded for the
/// Table 6 / Table 7 / Figure 7 benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SCANNER_SCANNER_H
#define GJS_SCANNER_SCANNER_H

#include "analysis/MDGBuilder.h"
#include "graphdb/QueryEngine.h"
#include "lint/Finding.h"
#include "obs/Counters.h"
#include "queries/QueryRunner.h"
#include "queries/SinkConfig.h"
#include "scanner/ScanError.h"

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace gjs {
namespace obs {
class TraceRecorder;
}
} // namespace gjs

namespace gjs {
namespace analysis {
class PackageGraph;
}
} // namespace gjs

namespace gjs {
namespace scanner {

/// Which query backend executes Table 2.
enum class QueryBackend {
  GraphDB, ///< Graph database + query language (the paper's pipeline).
  Native,  ///< Direct Table 1 traversals.
};

/// The per-package budget: wall-clock seconds for production batches,
/// abstract work units for deterministic tests/benches. Either may be 0
/// (disabled); both together form one Deadline shared by all phases.
struct DeadlineBudget {
  double WallSeconds = 0;
  uint64_t WorkUnits = 0;
  bool active() const { return WallSeconds > 0 || WorkUnits > 0; }
};

/// Deterministic fault injection: fail or stall one named phase on the
/// Nth package scanned by a Scanner instance. Faults are one-shot (a
/// transient failure): once fired they disarm, so a degradation-ladder
/// retry of the same package proceeds cleanly — which is exactly how the
/// tests demonstrate containment plus recovery.
struct FaultPlan {
  enum class Action {
    Fail,  ///< The phase dies: recorded as an InjectedFault, phase skipped.
    Stall, ///< The phase hangs: the deadline is forced expired at its entry.
    // Process-fatal actions: these take down the whole process at the
    // phase boundary and are only containable by the multi-process
    // supervisor (`graphjs batch --jobs N`). They make the OS-level kill
    // ladder deterministically testable.
    Crash, ///< abort(): models a segfault/assert in native code.
    Hang,  ///< Uninterruptible spin: ignores the cooperative deadline; only
           ///< RLIMIT_CPU or the supervisor's kill-on-deadline ends it.
    Oom,   ///< Allocation storm: dies on the memory rlimit (WorkerOomExit)
           ///< or self-reports OOM after a bounded number of allocations.
  };
  ScanPhase Phase = ScanPhase::Build;
  Action Kind = Action::Fail;
  /// 0-based index of the target package in this Scanner's scan sequence.
  unsigned Package = 0;
  /// Name-targeted fault (`<phase>:<action>@<name>`): the drivers (pool
  /// plan, shared ledger) match this against BatchInput::Name and rebase
  /// Package before the Scanner sees the plan — the Scanner itself only
  /// ever matches on the sequence index. A corpus-global poison package
  /// stays poisoned no matter which shard or supervisor picks it up.
  std::string PackageName;

  /// True for Crash/Hang/Oom — the actions an in-process driver cannot
  /// contain.
  bool processFatal() const {
    return Kind == Action::Crash || Kind == Action::Hang ||
           Kind == Action::Oom;
  }

  /// Parses "<phase>:<fail|stall|crash|hang|oom>[:<n>|@<name>]" (e.g.
  /// "build:fail:0", "query:stall:2", "build:crash@left-pad"); the target
  /// suffix is optional and defaults to package index 0.
  static bool parse(const std::string &Spec, FaultPlan &Out,
                    std::string *Error = nullptr);
};

struct ScanOptions {
  queries::SinkConfig Sinks = queries::SinkConfig::defaults();
  analysis::BuilderOptions Builder;
  graphdb::EngineOptions Engine;
  QueryBackend Backend = QueryBackend::GraphDB;
  /// Runs the MDG well-formedness checker over the freshly built graph and
  /// records its findings in ScanResult::SelfCheckFindings.
  bool SelfCheck = false;
  /// Per-package deadline shared by every phase (inactive by default; the
  /// Builder/Engine work budgets still apply independently).
  DeadlineBudget Deadline;
  /// Deterministic fault injection (tests/CI).
  std::optional<FaultPlan> Fault;
  /// Pre-query pruning: build the static call graph + per-function taint
  /// summaries after normalization and skip queries (or the whole graphdb
  /// import) for classes the exported API provably cannot reach. Sound by
  /// construction: any unresolved callee on a relevant path falls back to
  /// the full pipeline. `graphjs scan --no-prune` clears this.
  bool Prune = true;
  /// Async lowering (core/AsyncLower.h): desugar await, promise reactions
  /// (`.then/.catch/.finally`), `new Promise(executor)`, and the Promise.*
  /// statics into Core JS call/return structure right after normalization,
  /// so taint crossing async boundaries appears in the MDG. `graphjs scan
  /// --no-async-lower` clears this (corpus A/B runs, lowering triage).
  bool AsyncLower = true;
  /// Degradation-ladder depth: how many times a package whose scan hit a
  /// containable failure (injected fault, deadline, work budget) is retried
  /// with cheaper settings. 0 disables retries (single attempt, partial
  /// results only). Level 1 switches GraphDB → native traversals; level 2
  /// additionally reduces the builder budget.
  unsigned MaxDegradation = 2;
  /// Optional span recorder (non-owning, branch-on-null): the scan records
  /// a package → attempt → phase span tree under it, with per-file and
  /// per-query children (`graphjs scan --trace` / `--trace-out`).
  obs::TraceRecorder *Trace = nullptr;
};

/// Per-phase timing (seconds) — the Table 6 breakdown.
struct PhaseTimes {
  double Parse = 0;
  double Lower = 0; ///< Async lowering (a sub-phase between parse and build).
  double GraphBuild = 0;
  double DbImport = 0;
  double Query = 0;
  double total() const {
    return Parse + Lower + GraphBuild + DbImport + Query;
  }
  void accumulate(const PhaseTimes &O) {
    Parse += O.Parse;
    Lower += O.Lower;
    GraphBuild += O.GraphBuild;
    DbImport += O.DbImport;
    Query += O.Query;
  }
};

/// One degradation-ladder attempt's accounting: which level ran and what it
/// cost. ScanResult::Times only reflects the *final* attempt, so timing
/// attribution for a retried package needs this log — a level-0 attempt
/// that burned the whole deadline building the graph would otherwise
/// vanish from the books.
struct AttemptRecord {
  unsigned Level = 0; ///< Ladder level (0 = full pipeline).
  PhaseTimes Times;
  uint64_t DeadlineWork = 0; ///< Deadline units consumed by this attempt.
  bool TimedOut = false;     ///< This attempt hit a deadline/budget.
};

/// One scanned file/package result.
struct ScanResult {
  std::vector<queries::VulnReport> Reports;
  /// Structured failures, in occurrence order, accumulated across ladder
  /// attempts (replaces the old ParseFailed/TimedOut booleans).
  std::vector<ScanError> Errors;
  /// Ladder level of the final attempt (0 = full pipeline).
  unsigned Degradation = 0;
  /// Number of pipeline attempts (1 + retries).
  unsigned Attempts = 1;
  /// Degradation retries taken (Attempts - 1; explicit for journal/eval).
  unsigned Retries = 0;
  /// Final attempt only (the Table 6 numbers for the settings that won).
  PhaseTimes Times;
  /// Every attempt summed — the package's true wall-clock attribution
  /// under the degradation ladder.
  PhaseTimes CumulativeTimes;
  /// Per-attempt accounting, in ladder order.
  std::vector<AttemptRecord> AttemptLog;
  /// Counter deltas over the whole package scan, keyed by counter name
  /// (empty unless obs counters are enabled; see obs/Counters.h).
  obs::CounterSnapshot Counters;
  /// Graph-size accounting (Table 7). ASTNodes + CoreStmts approximate the
  /// AST/CFG share included for fairness with ODGen's counting.
  size_t MDGNodes = 0;
  size_t MDGEdges = 0;
  size_t ASTNodes = 0;
  size_t CoreStmts = 0;
  uint64_t BuildWork = 0;
  uint64_t QueryWork = 0;
  /// Deadline units consumed by the final attempt (all phases together).
  uint64_t DeadlineWork = 0;
  /// Nonempty when a built-in Table 2 query failed schema validation; the
  /// query phase is skipped (fail fast rather than silently match nothing).
  std::string SchemaError;
  /// MDG checker findings (populated when ScanOptions::SelfCheck is set).
  std::vector<lint::Finding> SelfCheckFindings;
  /// Pre-query pruning outcome: how many of the four vulnerability
  /// classes were skipped, and the per-class decision string
  /// ("CWE-78:pruned(no-sink-callsites),..."). Empty when pruning is
  /// disabled or never ran (e.g. parse-only failures).
  unsigned PrunedQueries = 0;
  std::string PruneReason;
  /// True when pruning removed all four classes under the GraphDB
  /// backend, so the database import itself was skipped.
  bool PruneSkippedImport = false;
  /// Dependency-tree scans: how many packages were linked into the
  /// flattened build (0 for single-package scans).
  unsigned LinkedPackages = 0;
  /// Dependency-tree scans: declared dependencies that could not be
  /// analyzed — every require of them stayed an unresolved callee.
  std::vector<std::string> MissingDeps;

  /// True when any file failed to parse (the file was skipped; the rest of
  /// the package was still scanned and linked).
  bool parseFailed() const;
  /// True when any deadline or work budget expired in any phase.
  bool timedOut() const;
  /// Per-phase timeout attribution (e.g. distinguishes query step-budget
  /// exhaustion from a graph-construction timeout).
  bool timedOutIn(ScanPhase P) const;
  /// True when an injected fault fired during this scan.
  bool faulted() const;
  /// The first timeout-class error, or nullptr.
  const ScanError *firstTimeout() const;
  /// "build: budget: ..." — first error rendered, or "" when clean.
  std::string errorSummary() const;
};

/// One source file of a package.
struct SourceFile {
  std::string Name;
  std::string Contents;
};

/// Cross-package link request for a dependency-tree scan, parallel to the
/// Files vector: which package owns each file, which files are package
/// mains, and which package names must classify as unresolved callees
/// (missing/unparseable dependencies — the soundness valve).
struct PackageLinkSpec {
  std::vector<std::string> PkgOf;
  std::vector<bool> IsMain;
  std::set<std::string> MissingDeps;
  /// The discovered tree (non-owning), for the pkggraph self-check pass.
  const analysis::PackageGraph *Packages = nullptr;
};

/// The Graph.js scanner.
class Scanner {
public:
  explicit Scanner(ScanOptions Options = {});

  /// Scans one JavaScript source buffer.
  ScanResult scanSource(const std::string &Source);

  /// Scans a multi-file package: each file is analyzed and the reports are
  /// merged (timings and sizes accumulate). A file that fails to parse is
  /// skipped with a per-file ScanError; the rest of the package is still
  /// scanned and linked.
  ScanResult scanPackage(const std::vector<SourceFile> &Files);

  /// Scans a whole dependency tree as one linked unit: the tree is
  /// flattened bottom-up (PackageGraph::flatten), inter-package requires
  /// resolve to the exporting package's code, and taint summaries compose
  /// transitively across package boundaries — a sink buried N dependency
  /// levels deep is reachable from the root's exported API. Missing or
  /// unparseable dependencies force unresolved callees (never pruned).
  ScanResult scanDependencyTree(const analysis::PackageGraph &G);

  const ScanOptions &options() const { return Options; }

  /// Packages scanned so far (the FaultPlan::Package sequence number).
  unsigned packagesScanned() const { return ScansDone; }

private:
  ScanOptions Options;
  /// Scan sequence number — drives FaultPlan targeting.
  unsigned ScansDone = 0;
  /// One-shot faults: set once the configured fault has fired.
  bool FaultSpent = false;

  /// One pipeline attempt under \p Cfg at ladder level \p Level.
  /// \p FaultArmed gates injection for this package; the attempt appends to
  /// Out.Errors. \p Link is non-null for dependency-tree scans.
  ScanResult runAttempt(const std::vector<SourceFile> &Files,
                        const ScanOptions &Cfg, bool FaultArmed,
                        unsigned Level, const PackageLinkSpec *Link = nullptr);

  /// Shared degradation-ladder driver for scanPackage/scanDependencyTree.
  ScanResult scanWithLadder(const std::vector<SourceFile> &Files,
                            const PackageLinkSpec *Link);

  /// True when the attempt's errors warrant a cheaper retry.
  static bool wantsDegradation(const ScanResult &R);

  /// Settings for ladder level \p Level (1-based).
  static ScanOptions degrade(const ScanOptions &Base, unsigned Level);
};

/// Serializes reports as a JSON array (tool output).
std::string reportsToJSON(const std::vector<queries::VulnReport> &Reports);

} // namespace scanner
} // namespace gjs

#endif // GJS_SCANNER_SCANNER_H
