//===- scanner/Scanner.h - The Graph.js scanning pipeline --------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end Graph.js pipeline (§4 Implementation): parse JavaScript,
/// transpile to Core JavaScript, build the MDG, import it into the graph
/// database, and run the vulnerability queries. Reports carry the CWE and
/// the sink line number, which is what the evaluation compares against
/// dataset annotations.
///
/// Per-phase wall-clock times and graph sizes are recorded for the
/// Table 6 / Table 7 / Figure 7 benchmarks. Work budgets model the
/// evaluation's 5-minute per-package timeout deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SCANNER_SCANNER_H
#define GJS_SCANNER_SCANNER_H

#include "analysis/MDGBuilder.h"
#include "graphdb/QueryEngine.h"
#include "lint/Finding.h"
#include "queries/QueryRunner.h"
#include "queries/SinkConfig.h"

#include <string>
#include <vector>

namespace gjs {
namespace scanner {

/// Which query backend executes Table 2.
enum class QueryBackend {
  GraphDB, ///< Graph database + query language (the paper's pipeline).
  Native,  ///< Direct Table 1 traversals.
};

struct ScanOptions {
  queries::SinkConfig Sinks = queries::SinkConfig::defaults();
  analysis::BuilderOptions Builder;
  graphdb::EngineOptions Engine;
  QueryBackend Backend = QueryBackend::GraphDB;
  /// Runs the MDG well-formedness checker over the freshly built graph and
  /// records its findings in ScanResult::SelfCheckFindings.
  bool SelfCheck = false;
};

/// Per-phase timing (seconds) — the Table 6 breakdown.
struct PhaseTimes {
  double Parse = 0;
  double GraphBuild = 0;
  double DbImport = 0;
  double Query = 0;
  double total() const { return Parse + GraphBuild + DbImport + Query; }
};

/// One scanned file/package result.
struct ScanResult {
  std::vector<queries::VulnReport> Reports;
  bool ParseFailed = false;
  bool TimedOut = false;
  PhaseTimes Times;
  /// Graph-size accounting (Table 7). ASTNodes + CoreStmts approximate the
  /// AST/CFG share included for fairness with ODGen's counting.
  size_t MDGNodes = 0;
  size_t MDGEdges = 0;
  size_t ASTNodes = 0;
  size_t CoreStmts = 0;
  uint64_t BuildWork = 0;
  uint64_t QueryWork = 0;
  /// Nonempty when a built-in Table 2 query failed schema validation; the
  /// query phase is skipped (fail fast rather than silently match nothing).
  std::string SchemaError;
  /// MDG checker findings (populated when ScanOptions::SelfCheck is set).
  std::vector<lint::Finding> SelfCheckFindings;
};

/// One source file of a package.
struct SourceFile {
  std::string Name;
  std::string Contents;
};

/// The Graph.js scanner.
class Scanner {
public:
  explicit Scanner(ScanOptions Options = {});

  /// Scans one JavaScript source buffer.
  ScanResult scanSource(const std::string &Source);

  /// Scans a multi-file package: each file is analyzed and the reports are
  /// merged (timings and sizes accumulate).
  ScanResult scanPackage(const std::vector<SourceFile> &Files);

  const ScanOptions &options() const { return Options; }

private:
  ScanOptions Options;
};

/// Serializes reports as a JSON array (tool output).
std::string reportsToJSON(const std::vector<queries::VulnReport> &Reports);

} // namespace scanner
} // namespace gjs

#endif // GJS_SCANNER_SCANNER_H
