//===- scanner/WitnessReplay.cpp - Concrete finding confirmation ----------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "scanner/WitnessReplay.h"

#include "analysis/ConcreteInterp.h"

#include <algorithm>

#include <string>
#include <vector>

using namespace gjs;
using namespace gjs::scanner;
using analysis::ConcreteInterp;
using analysis::ConcreteResult;
using analysis::ValueSpec;

namespace {

const char *Canary = "__CANARY__";

/// The input shapes replay tries for each parameter position. Shapes map
/// to the idioms the dataset generator (and real packages) use: plain
/// strings, dotted paths (set-value), pollution key names, array-likes,
/// and nested config objects.
std::vector<std::vector<ValueSpec>> inputShapes(size_t Arity) {
  auto CanaryStr = [] { return ValueSpec::string(Canary); };
  auto DottedPath = [] {
    return ValueSpec::string(std::string("__proto__.") + Canary);
  };
  auto ArrayLike = [&] {
    return ValueSpec::object({{"0", CanaryStr()},
                              {"1", CanaryStr()},
                              {"length", ValueSpec::number(2)}});
  };
  auto NestedConfig = [&] {
    return ValueSpec::object(
        {{Canary, ValueSpec::object({{Canary, CanaryStr()}})},
         {"cmd", CanaryStr()},
         {"__proto__", ValueSpec::object()}});
  };

  std::vector<std::vector<ValueSpec>> Shapes;
  auto Fill = [&](auto Maker) {
    std::vector<ValueSpec> Args;
    for (size_t I = 0; I < Arity; ++I)
      Args.push_back(Maker());
    Shapes.push_back(std::move(Args));
  };
  Fill(CanaryStr);
  Fill(ArrayLike);
  Fill(NestedConfig);
  Fill(DottedPath);
  // Mixed: object first (merge targets), canary strings after.
  {
    std::vector<ValueSpec> Args;
    for (size_t I = 0; I < Arity; ++I)
      Args.push_back(I == 0 ? NestedConfig() : CanaryStr());
    Shapes.push_back(std::move(Args));
  }
  return Shapes;
}

bool confirmInRun(const ConcreteResult &Run,
                  const queries::VulnReport &Finding, std::string &Witness) {
  auto HasCanary = [](const std::string &S) {
    return S.find(Canary) != std::string::npos;
  };

  if (Finding.Type == queries::VulnType::PrototypePollution) {
    for (const analysis::WriteObservation &W : Run.DynWrites) {
      if (W.Line != Finding.SinkLoc.Line)
        continue;
      if (HasCanary(W.PropName) || W.PropName == "__proto__") {
        Witness = "dynamic write of property '" + W.PropName +
                  "' = '" + W.Value + "' at line " + std::to_string(W.Line);
        return HasCanary(W.Value) || HasCanary(W.PropName);
      }
    }
    return false;
  }

  for (const analysis::CallObservation &C : Run.Calls) {
    if (C.Line != Finding.SinkLoc.Line)
      continue;
    if (!Finding.SinkName.empty() && C.CalleeName != Finding.SinkName)
      continue;
    for (size_t I = 0; I < C.ArgValues.size(); ++I) {
      if (HasCanary(C.ArgValues[I])) {
        Witness = C.CalleeName + "(arg" + std::to_string(I) + " = '" +
                  C.ArgValues[I] + "') at line " + std::to_string(C.Line);
        return true;
      }
    }
  }
  return false;
}

} // namespace

ReplayResult scanner::replayFinding(const core::Program &Program,
                                    const queries::VulnReport &Finding) {
  ReplayResult Out;

  // Candidate entries: exported functions (deduplicated).
  std::vector<std::string> Entries;
  for (const core::ExportEntry &E : Program.Exports)
    if (!E.FunctionName.empty() && Program.Functions.count(E.FunctionName) &&
        std::find(Entries.begin(), Entries.end(), E.FunctionName) ==
            Entries.end())
      Entries.push_back(E.FunctionName);

  analysis::InterpOptions IO;
  IO.MaxSteps = 20000;
  IO.MaxLoopIters = 16;

  for (const std::string &Entry : Entries) {
    size_t Arity = Program.Functions.at(Entry)->Params.size();
    for (std::vector<ValueSpec> &Args : inputShapes(std::max<size_t>(
             Arity, 1))) {
      ++Out.Attempts;
      ConcreteInterp CI(IO);
      ConcreteResult Run = CI.run(Program, Entry, Args);
      std::string Witness;
      if (confirmInRun(Run, Finding, Witness)) {
        Out.Confirmed = true;
        Out.EntryFunction = Entry;
        Out.Witness = std::move(Witness);
        return Out;
      }
    }
  }
  return Out;
}

std::vector<queries::VulnReport>
scanner::confirmByReplay(const core::Program &Program,
                         const std::vector<queries::VulnReport> &Findings) {
  std::vector<queries::VulnReport> Confirmed;
  for (const queries::VulnReport &F : Findings)
    if (replayFinding(Program, F).Confirmed)
      Confirmed.push_back(F);
  return Confirmed;
}
