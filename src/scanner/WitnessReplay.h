//===- scanner/WitnessReplay.h - Concrete finding confirmation ---*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Witness replay: attempts to *confirm* a static finding by concretely
/// executing the package's exported functions on canary inputs and
/// observing whether attacker-controlled data actually reaches the
/// reported sink.
///
/// The paper's evaluation distinguishes findings "for which we have been
/// able to generate a successful exploit" (§5.2's TFP metric, §5.3's
/// Exploitable column) — there the exploits were built by hand. Replay
/// automates the easy half: a finding confirmed by replay is certainly
/// not a true false positive; an unconfirmed finding stays undecided
/// (replay explores a handful of canned input shapes, not all of them).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_SCANNER_WITNESSREPLAY_H
#define GJS_SCANNER_WITNESSREPLAY_H

#include "core/CoreIR.h"
#include "queries/VulnTypes.h"

#include <string>
#include <vector>

namespace gjs {
namespace scanner {

/// Outcome of replaying one finding.
struct ReplayResult {
  /// True when a canary reached the sink (taint-style) or a canary key
  /// was written by a dynamic property update at the sink line
  /// (prototype pollution).
  bool Confirmed = false;
  /// The entry function whose invocation produced the witness.
  std::string EntryFunction;
  /// Human-readable witness: the observed sink arguments / written
  /// property, with the canary visible.
  std::string Witness;
  /// How many (entry, input-shape) combinations were tried.
  unsigned Attempts = 0;
};

/// Replays \p Finding against \p Program. Tries every exported entry with
/// several input shapes (canary strings, canary-keyed objects, array-like
/// objects of canaries, dotted canary paths for set-value-style code).
ReplayResult replayFinding(const core::Program &Program,
                           const queries::VulnReport &Finding);

/// Convenience: replays every finding and returns the confirmed subset.
std::vector<queries::VulnReport>
confirmByReplay(const core::Program &Program,
                const std::vector<queries::VulnReport> &Findings);

} // namespace scanner
} // namespace gjs

#endif // GJS_SCANNER_WITNESSREPLAY_H
