//===- core/AsyncLower.cpp - Promise/async lowering to Core JS -------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/AsyncLower.h"

#include <set>
#include <utility>

using namespace gjs;
using namespace gjs::core;

namespace {

/// The synthetic property holding a promise's settled value. The '%'
/// prefix keeps it out of the user-visible property namespace (same
/// convention as the Normalizer's '%t' temporaries).
const char *const PromiseProp = "%promise";

class AsyncLowerer {
public:
  AsyncLowerer(Program &P, std::string Prefix, Deadline *D)
      : P(P), Prefix(std::move(Prefix)), D(D), LastIndex(P.NumIndices) {}

  AsyncLowerStats run() {
    collectFuncVars(P.TopLevel);
    for (const auto &[Name, Fn] : P.Functions)
      collectFuncVars(Fn->Body);

    lowerBlock(P.TopLevel);
    // Snapshot first: lowering `new Promise(ex)` registers synthesized
    // resolver functions in P.Functions while we iterate.
    std::vector<std::shared_ptr<Function>> Fns;
    Fns.reserve(P.Functions.size());
    for (const auto &[Name, Fn] : P.Functions)
      Fns.push_back(Fn);
    for (const auto &Fn : Fns)
      lowerBlock(Fn->Body);

    P.NumIndices = LastIndex;
    return Stats;
  }

private:
  Program &P;
  const std::string Prefix;
  Deadline *D;
  StmtIndex LastIndex;
  unsigned NextTemp = 0;
  AsyncLowerStats Stats;
  /// Variables statically bound to a function value (FuncDef targets):
  /// handlers outside this set stay with the UnresolvedCallback valve.
  std::set<std::string> FuncVars;

  bool expired() const { return D && D->expired(); }

  std::string freshTemp() { return "%a" + std::to_string(++NextTemp); }

  StmtPtr make(StmtKind K, const Stmt &Orig, AsyncRole Role) {
    auto S = std::make_unique<Stmt>(K);
    S->Index = ++LastIndex;
    S->Loc = Orig.Loc;
    S->Async = Role;
    return S;
  }

  void collectFuncVars(const std::vector<StmtPtr> &Block) {
    for (const StmtPtr &S : Block) {
      if (S->K == StmtKind::FuncDef && !S->Target.empty())
        FuncVars.insert(S->Target);
      collectFuncVars(S->Then);
      collectFuncVars(S->Else);
      collectFuncVars(S->Body);
    }
  }

  void noteHandler(const Operand &H) {
    if (FuncVars.count(H.Name))
      ++Stats.ReactionsLinked;
    else
      ++Stats.CallbacksUnresolved;
  }

  //===--------------------------------------------------------------------===//
  // Pattern predicates (over the Normalizer's output shapes)
  //===--------------------------------------------------------------------===//

  static bool isThenLike(const Stmt &S) {
    return S.K == StmtKind::Call && !S.IsNew && S.Receiver.isVar() &&
           S.Receiver.Name != "Promise" &&
           (S.CalleeName == "then" || S.CalleeName == "catch" ||
            S.CalleeName == "finally");
  }

  static bool isNewPromise(const Stmt &S) {
    return S.K == StmtKind::Call && S.IsNew &&
           (S.CalleeName == "Promise" ||
            (S.Callee.isVar() && S.Callee.Name == "Promise")) &&
           !S.Args.empty() && S.Args[0].isVar();
  }

  /// "resolve", "reject", "all", ... for Promise.<static> calls, else "".
  static std::string promiseStaticKind(const Stmt &S) {
    if (S.K != StmtKind::Call || S.IsNew)
      return "";
    if (S.CalleePath == "Promise.resolve" || S.CalleePath == "Promise.reject")
      return S.CalleeName;
    if (S.CalleePath == "Promise.all" || S.CalleePath == "Promise.allSettled" ||
        S.CalleePath == "Promise.race" || S.CalleePath == "Promise.any")
      return S.CalleeName;
    return "";
  }

  //===--------------------------------------------------------------------===//
  // Rewrites
  //===--------------------------------------------------------------------===//

  /// Emits the suspend/resume sequence extracting Src's settled value into
  /// a fresh variable (returned):
  ///
  ///   %r1 := Src.%promise       suspend — the stored settled value
  ///   %r2 := %r1.%promise       suspend — one-level promise flattening
  ///   %r3 := %r1 await %r2      resume — joins both read depths
  ///
  /// Flattening happens on the *read* side: a second settle write would
  /// create a newer object version shadowing the first store (exactly the
  /// overwrite pattern the UntaintedPath exclusion prunes), severing the
  /// flow. Reading an extra `.%promise` level off the settled value is a
  /// no-op for plain values (a fresh dead-end property node) and resolves
  /// the inner settled value when a promise was settled with a promise.
  std::string emitSettledValue(const Stmt &Orig, const std::string &Src,
                               std::vector<StmtPtr> &Out) {
    std::string Raw = freshTemp();
    StmtPtr Susp = make(StmtKind::StaticLookup, Orig, AsyncRole::AwaitSuspend);
    Susp->Target = Raw;
    Susp->Obj = Operand::var(Src);
    Susp->Prop = PromiseProp;
    Out.push_back(std::move(Susp));

    std::string Flat = freshTemp();
    StmtPtr FL = make(StmtKind::StaticLookup, Orig, AsyncRole::AwaitSuspend);
    FL->Target = Flat;
    FL->Obj = Operand::var(Raw);
    FL->Prop = PromiseProp;
    Out.push_back(std::move(FL));

    std::string Val = freshTemp();
    StmtPtr Res = make(StmtKind::BinOp, Orig, AsyncRole::AwaitResume);
    Res->Target = Val;
    Res->LHS = Operand::var(Raw);
    Res->Op = "await";
    Res->RHS = Operand::var(Flat);
    Out.push_back(std::move(Res));
    return Val;
  }

  /// `%p.%promise := V`. Each promise is settled exactly once: a second
  /// settle would shadow the first (see emitSettledValue); candidates are
  /// merged with emitValueJoin before the single store.
  void emitSettle(const Stmt &Orig, const std::string &PromiseVar,
                  const Operand &V, std::vector<StmtPtr> &Out) {
    StmtPtr U = make(StmtKind::StaticUpdate, Orig, AsyncRole::None);
    U->Obj = Operand::var(PromiseVar);
    U->Prop = PromiseProp;
    U->Value = V;
    Out.push_back(std::move(U));
  }

  /// `T := A promise-join B` into a fresh T (returned). The builder treats
  /// the promise-join op as a store-level alias union — T may be either
  /// operand's object — so properties (the settled `%promise`) stay
  /// reachable through it, which a fresh dependency node would sever.
  std::string emitValueJoin(const Stmt &Orig, const Operand &A,
                            const Operand &B, std::vector<StmtPtr> &Out,
                            StmtIndex JoinIndex = 0,
                            const std::string &Target = "") {
    StmtPtr J = make(StmtKind::BinOp, Orig, AsyncRole::PromiseJoin);
    if (JoinIndex)
      J->Index = JoinIndex;
    J->Target = Target.empty() ? freshTemp() : Target;
    J->LHS = A;
    J->Op = "promise-join";
    J->RHS = B;
    std::string T = J->Target;
    Out.push_back(std::move(J));
    return T;
  }

  /// `T := T promise-join P` — folds the modeled promise into the original
  /// call's result without dropping the unknown-call over-approximation.
  void emitJoin(const Stmt &Orig, const std::string &PromiseVar,
                std::vector<StmtPtr> &Out) {
    if (Orig.Target.empty())
      return;
    emitValueJoin(Orig, Operand::var(Orig.Target), Operand::var(PromiseVar),
                  Out, /*JoinIndex=*/0, /*Target=*/Orig.Target);
  }

  /// x := await e  →  suspend/resume reads plus an alias join with the
  /// awaited operand itself (awaiting a plain value stays a passthrough).
  void lowerAwait(const Stmt &Orig, std::vector<StmtPtr> &Out) {
    ++Stats.AwaitsLowered;
    if (!Orig.Value.isVar()) {
      StmtPtr A = make(StmtKind::Assign, Orig, AsyncRole::None);
      A->Index = Orig.Index;
      A->Target = Orig.Target;
      A->Value = Orig.Value;
      Out.push_back(std::move(A));
      return;
    }
    std::string Val = emitSettledValue(Orig, Orig.Value.Name, Out);
    // Reuse the await's allocation site for the final value.
    emitValueJoin(Orig, Orig.Value, Operand::var(Val), Out,
                  /*JoinIndex=*/Orig.Index, /*Target=*/Orig.Target);
  }

  /// p.then/catch/finally(handlers): reaction registration. The original
  /// call is kept (sound for plain objects with a user-defined `then`);
  /// this appends the promise-semantics model.
  void lowerThenLike(const Stmt &Orig, std::vector<StmtPtr> &Out) {
    std::string Val = emitSettledValue(Orig, Orig.Receiver.Name, Out);
    bool IsFinally = Orig.CalleeName == "finally";

    std::vector<std::string> Results;
    for (const Operand &H : Orig.Args) {
      if (!H.isVar())
        continue;
      noteHandler(H);
      StmtPtr RC = make(StmtKind::Call, Orig, AsyncRole::ReactionCall);
      RC->Target = freshTemp();
      RC->Callee = H;
      RC->CalleeName = H.Name;
      if (!IsFinally) // .finally callbacks receive no settled value.
        RC->Args.push_back(Operand::var(Val));
      Results.push_back(RC->Target);
      Out.push_back(std::move(RC));
    }

    // The chained promise: settled once with the alias union of every
    // handler's result and the source value (identity/rejection
    // passthrough). Handler-returned promises flatten at the read side.
    std::string Chained = freshTemp();
    StmtPtr PA = make(StmtKind::NewObject, Orig, AsyncRole::PromiseAlloc);
    PA->Target = Chained;
    Out.push_back(std::move(PA));
    std::string Settle = Val;
    for (const std::string &R : Results)
      Settle = emitValueJoin(Orig, Operand::var(Settle), Operand::var(R), Out);
    emitSettle(Orig, Chained, Operand::var(Settle), Out);
    emitJoin(Orig, Chained, Out);
  }

  /// Synthesizes `function(v) { %p.%promise := v; }`, registers it in the
  /// program, and emits its FuncDef. Returns the variable bound to the
  /// function value.
  std::string synthesizeResolver(const Stmt &Orig, const std::string &PromiseVar,
                                 const char *Base, std::vector<StmtPtr> &Out) {
    auto Fn = std::make_shared<Function>();
    StmtIndex FnIdx = ++LastIndex;
    Fn->Name = Prefix + std::string(Base) + "#" + std::to_string(FnIdx);
    Fn->OriginalName = Base;
    Fn->Index = FnIdx;
    Fn->Loc = Orig.Loc;
    std::string Param = freshTemp();
    Fn->Params.push_back(Param);
    emitSettle(Orig, PromiseVar, Operand::var(Param), Fn->Body);
    P.Functions[Fn->Name] = Fn;

    StmtPtr FD = make(StmtKind::FuncDef, Orig, AsyncRole::ResolverDef);
    FD->Target = freshTemp();
    FD->Func = Fn;
    std::string Var = FD->Target;
    FuncVars.insert(Var);
    Out.push_back(std::move(FD));
    return Var;
  }

  /// new Promise(executor): resolve/reject parameter linking. The executor
  /// is invoked directly with synthesized resolvers that settle the promise.
  void lowerNewPromise(const Stmt &Orig, std::vector<StmtPtr> &Out) {
    std::string PromiseVar = freshTemp();
    StmtPtr PA = make(StmtKind::NewObject, Orig, AsyncRole::PromiseAlloc);
    PA->Target = PromiseVar;
    Out.push_back(std::move(PA));

    std::string Res = synthesizeResolver(Orig, PromiseVar, "%resolve", Out);
    std::string Rej = synthesizeResolver(Orig, PromiseVar, "%reject", Out);

    noteHandler(Orig.Args[0]);
    StmtPtr RC = make(StmtKind::Call, Orig, AsyncRole::ReactionCall);
    RC->Target = freshTemp();
    RC->Callee = Orig.Args[0];
    RC->CalleeName = Orig.Args[0].Name;
    RC->Args.push_back(Operand::var(Res));
    RC->Args.push_back(Operand::var(Rej));
    Out.push_back(std::move(RC));

    emitJoin(Orig, PromiseVar, Out);
  }

  /// Promise.resolve/reject(v) and Promise.all/allSettled/race/any(arr).
  void lowerPromiseStatic(const Stmt &Orig, const std::string &Kind,
                          std::vector<StmtPtr> &Out) {
    std::string PromiseVar = freshTemp();
    StmtPtr PA = make(StmtKind::NewObject, Orig, AsyncRole::PromiseAlloc);
    PA->Target = PromiseVar;
    Out.push_back(std::move(PA));

    if (Kind == "resolve" || Kind == "reject") {
      if (!Orig.Args.empty())
        emitSettle(Orig, PromiseVar, Orig.Args[0], Out);
    } else if (!Orig.Args.empty() && Orig.Args[0].isVar()) {
      // Combinators: an unknown element of the array, its settled value,
      // and the array itself (Promise.all resolves with an array of
      // values) all settle the result — merged into the single store.
      std::string Elem = freshTemp();
      StmtPtr EL = make(StmtKind::DynamicLookup, Orig, AsyncRole::None);
      EL->Target = Elem;
      EL->Obj = Orig.Args[0];
      EL->PropOperand = Operand::undefined();
      Out.push_back(std::move(EL));
      std::string Val = emitSettledValue(Orig, Elem, Out);
      std::string Settle =
          emitValueJoin(Orig, Operand::var(Val), Orig.Args[0], Out);
      emitSettle(Orig, PromiseVar, Operand::var(Settle), Out);
    }
    emitJoin(Orig, PromiseVar, Out);
  }

  void lowerBlock(std::vector<StmtPtr> &Block) {
    std::vector<StmtPtr> Out;
    Out.reserve(Block.size());
    for (StmtPtr &SP : Block) {
      Stmt &S = *SP;
      if (expired() || S.Async != AsyncRole::None) {
        Out.push_back(std::move(SP));
        continue;
      }
      lowerBlock(S.Then);
      lowerBlock(S.Else);
      lowerBlock(S.Body);

      if (S.K == StmtKind::UnOp && S.Op == "await") {
        lowerAwait(S, Out); // Replaces the passthrough UnOp.
        continue;
      }
      bool ThenLike = isThenLike(S);
      bool NewPromise = isNewPromise(S);
      std::string StaticKind = promiseStaticKind(S);
      Out.push_back(std::move(SP)); // Keep the original call (soundness).
      if (ThenLike)
        lowerThenLike(S, Out);
      else if (NewPromise)
        lowerNewPromise(S, Out);
      else if (!StaticKind.empty())
        lowerPromiseStatic(S, StaticKind, Out);
    }
    Block = std::move(Out);
  }
};

} // namespace

AsyncLowerStats core::lowerAsync(Program &P, const std::string &ModulePrefix,
                                 Deadline *D) {
  return AsyncLowerer(P, ModulePrefix, D).run();
}
