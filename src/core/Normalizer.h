//===- core/Normalizer.h - AST to Core JavaScript lowering ------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the JavaScript AST to the Core JavaScript IR (§3.2). The lowering
/// is three-address style: every compound expression is split into Core
/// statements over variables and literals, so the MDG builder sees exactly
/// the statement forms its analysis rules cover.
///
/// Control flow lowering over-approximates where the paper's analysis does:
/// `a && b` evaluates both sides, `c ? t : e` becomes an if-join,
/// try/catch/finally bodies run in sequence, for/for-in/for-of become
/// while loops (analyzed to fixpoint), and break/continue become no-ops.
///
/// The normalizer also performs the scanner-facing bookkeeping the paper's
/// Graph.js pipeline needs:
///   - `require` alias tracking (`cp = require('child_process')`, including
///     destructured requires), so sink names resolve to full paths;
///   - export extraction (`module.exports = f`, `exports.n = f`,
///     `module.exports = {a, b}`, exported classes), so the scanner knows
///     which functions' parameters are taint sources.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_CORE_NORMALIZER_H
#define GJS_CORE_NORMALIZER_H

#include "core/CoreIR.h"
#include "frontend/AST.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <set>
#include <string>

namespace gjs {

class Deadline;

namespace core {

/// Lowers one parsed module to a Core JavaScript program.
///
/// For multi-file packages, give each file a distinct \p ModulePrefix and
/// a disjoint \p FirstIndex range: core function names and statement
/// indices are the analysis' allocation keys and must not collide across
/// linked modules.
///
/// A scan-level Deadline may be attached (the fault-tolerant runtime's
/// per-package budget); lowering checkpoints it per statement and, on
/// expiry, stops emitting — the partial Core program is still valid IR.
class Normalizer {
public:
  explicit Normalizer(DiagnosticEngine &Diags, std::string ModulePrefix = "",
                      StmtIndex FirstIndex = 1,
                      Deadline *ScanDeadline = nullptr)
      : Diags(Diags), ModulePrefix(std::move(ModulePrefix)),
        NextIndex(FirstIndex), ScanDeadline(ScanDeadline) {}

  std::unique_ptr<Program> normalize(const ast::Program &Module);

private:
  DiagnosticEngine &Diags;
  std::string ModulePrefix;
  Program *Prog = nullptr;
  StmtIndex NextIndex = 1;
  Deadline *ScanDeadline = nullptr;
  unsigned NextTemp = 0;
  unsigned NextFuncId = 0;
  std::vector<std::vector<StmtPtr> *> Blocks;

  /// Variable -> core function name, for export extraction.
  std::map<std::string, std::string> VarToFunc;
  /// (object temp, property) -> core function name, for
  /// `module.exports = {run: function() {...}}`.
  std::map<std::pair<std::string, std::string>, std::string> PropToFunc;
  /// Variable -> class name for exported classes.
  std::map<std::string, std::string> VarToClass;
  /// Class name -> method core-function names.
  std::map<std::string, std::vector<std::string>> ClassMethods;
  /// Temp var produced by `require('m')` -> module name.
  std::map<std::string, std::string> TempRequire;
  /// Temps bound to `module.exports` (for `var m = module.exports; m.f=...`).
  std::set<std::string> ModuleExportsVars;

  //===--------------------------------------------------------------------===//
  // Emission helpers
  //===--------------------------------------------------------------------===//

  std::vector<StmtPtr> &block() { return *Blocks.back(); }
  Stmt &emit(StmtKind K, SourceLocation Loc);
  StmtIndex freshIndex() { return NextIndex++; }
  std::string freshTemp() { return "%t" + std::to_string(NextTemp++); }
  std::string freshFuncName(const std::string &Base);

  //===--------------------------------------------------------------------===//
  // Statement lowering
  //===--------------------------------------------------------------------===//

  void lowerStmt(const ast::Stmt *S);
  void lowerBlockInline(const ast::Stmt *S);
  std::vector<StmtPtr> lowerToBlock(const ast::Stmt *S);
  void lowerVarDecl(const ast::VariableDeclaration *V);
  void lowerIf(const ast::IfStatement *S);
  void lowerWhile(const ast::WhileStatement *S);
  void lowerFor(const ast::ForStatement *S);
  void lowerForInOf(const ast::ForInOfStatement *S);
  void lowerSwitch(const ast::SwitchStatement *S);
  void lowerTry(const ast::TryStatement *S);

  //===--------------------------------------------------------------------===//
  // Expression lowering
  //===--------------------------------------------------------------------===//

  Operand lowerExpr(const ast::Expr *E);
  /// Forces the result into a variable operand (emitting an Assign when the
  /// expression lowers to a literal).
  Operand lowerToVar(const ast::Expr *E);
  Operand materialize(Operand O, SourceLocation Loc);

  Operand lowerObjectLiteral(const ast::ObjectLiteral *O);
  Operand lowerArrayLiteral(const ast::ArrayLiteral *A);
  Operand lowerFunction(const ast::FunctionExpr *F);
  Operand lowerArrow(const ast::ArrowFunctionExpr *A);
  Operand lowerClass(const ast::ClassExpr *C);
  Operand lowerAssignment(const ast::AssignmentExpr *A);
  Operand lowerCall(const ast::CallExpr *C);
  Operand lowerNew(const ast::NewExpr *N);
  Operand lowerMemberLookup(const ast::MemberExpr *M);
  Operand lowerMemberLookupOn(const ast::MemberExpr *M, Operand ObjV);
  Operand lowerTemplate(const ast::TemplateLiteral *T);
  Operand lowerConditional(const ast::ConditionalExpr *C);

  /// Binds the names in a destructuring \p Pattern from \p Source.
  void destructure(const ast::Expr *Pattern, const Operand &Source,
                   SourceLocation Loc);

  /// Lowers a function body (params + statements) into \p Fn.
  void lowerFunctionBody(Function &Fn, const std::vector<ast::Param> &Params,
                         const ast::Stmt *Body, const ast::Expr *ExprBody);

  /// Builds the dotted callee path (with require aliases resolved) for a
  /// call like `cp.exec(...)`. Returns "" when not statically determinable.
  std::string calleePath(const ast::Expr *Callee) const;

  /// Export bookkeeping for `o.p := v` statements.
  void recordExportIfAny(const Operand &Obj, const std::string &Prop,
                         const Operand &Value);
  void exportFunctionValue(const std::string &ExportName,
                           const Operand &Value);
};

/// Convenience: parse + normalize in one step.
std::unique_ptr<Program> normalizeJS(const std::string &Source,
                                     DiagnosticEngine &Diags);

} // namespace core
} // namespace gjs

#endif // GJS_CORE_NORMALIZER_H
