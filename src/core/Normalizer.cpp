//===- core/Normalizer.cpp - AST to Core JavaScript lowering --------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Normalizer.h"

#include "frontend/Parser.h"
#include "support/Deadline.h"

#include <cassert>

using namespace gjs;
using namespace gjs::core;

// Selective imports from the AST namespace: `Stmt`, `Program`, and the
// smart-pointer aliases collide with the Core IR names, so those stay
// qualified as ast::.
using ast::ArrayLiteral;
using ast::ArrowFunctionExpr;
using ast::AssignmentExpr;
using ast::AwaitExpr;
using ast::BinaryExpr;
using ast::BlockStatement;
using ast::BooleanLiteral;
using ast::CallExpr;
using ast::cast;
using ast::ClassDeclaration;
using ast::ClassExpr;
using ast::ClassMember;
using ast::ConditionalExpr;
using ast::dyn_cast;
using ast::ExpressionStatement;
using ast::ForInOfStatement;
using ast::ForStatement;
using ast::FunctionDeclaration;
using ast::FunctionExpr;
using ast::Identifier;
using ast::IfStatement;
using ast::isa;
using ast::LabeledStatement;
using ast::LogicalExpr;
using ast::MemberExpr;
using ast::NewExpr;
using ast::NumberLiteral;
using ast::ObjectLiteral;
using ast::ObjectProperty;
using ast::ReturnStatement;
using ast::SequenceExpr;
using ast::SpreadElement;
using ast::StringLiteral;
using ast::SwitchCase;
using ast::SwitchStatement;
using ast::TaggedTemplateExpr;
using ast::TemplateLiteral;
using ast::ThrowStatement;
using ast::TryStatement;
using ast::UnaryExpr;
using ast::UpdateExpr;
using ast::VarDeclarator;
using ast::VariableDeclaration;
using ast::WhileStatement;
using ast::YieldExpr;
using ast::DoWhileStatement;

std::unique_ptr<Program> core::normalizeJS(const std::string &Source,
                                           DiagnosticEngine &Diags) {
  auto Module = parseJS(Source, Diags);
  Normalizer N(Diags);
  return N.normalize(*Module);
}

std::unique_ptr<Program> Normalizer::normalize(const ast::Program &Module) {
  auto P = std::make_unique<Program>();
  Prog = P.get();
  Blocks.push_back(&P->TopLevel);
  for (const ast::StmtPtr &S : Module.Body)
    lowerStmt(S.get());
  Blocks.pop_back();
  P->NumIndices = NextIndex;
  return P;
}

Stmt &Normalizer::emit(StmtKind K, SourceLocation Loc) {
  block().push_back(std::make_unique<Stmt>(K));
  Stmt &S = *block().back();
  S.Loc = Loc;
  S.Index = freshIndex();
  return S;
}

std::string Normalizer::freshFuncName(const std::string &Base) {
  std::string Name = ModulePrefix + (Base.empty() ? "anon" : Base);
  Name += "#" + std::to_string(NextFuncId++);
  return Name;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Normalizer::lowerStmt(const ast::Stmt *S) {
  if (!S)
    return;
  // Cooperative cancellation: once the scan deadline expires, stop
  // emitting. The Core program built so far remains well-formed.
  if (ScanDeadline && ScanDeadline->checkpoint())
    return;
  switch (S->kind()) {
  case ast::Stmt::Kind::Program:
    for (const auto &Child : cast<ast::Program>(S)->Body)
      lowerStmt(Child.get());
    break;
  case ast::Stmt::Kind::Block:
    for (const auto &Child : cast<BlockStatement>(S)->Body)
      lowerStmt(Child.get());
    break;
  case ast::Stmt::Kind::VarDecl:
    lowerVarDecl(cast<VariableDeclaration>(S));
    break;
  case ast::Stmt::Kind::Empty:
  case ast::Stmt::Kind::Debugger:
    break;
  case ast::Stmt::Kind::ExprStmt:
    lowerExpr(cast<ExpressionStatement>(S)->Expression.get());
    break;
  case ast::Stmt::Kind::If:
    lowerIf(cast<IfStatement>(S));
    break;
  case ast::Stmt::Kind::While:
    lowerWhile(cast<WhileStatement>(S));
    break;
  case ast::Stmt::Kind::DoWhile: {
    const auto *D = cast<DoWhileStatement>(S);
    // Body runs at least once, then as a while loop to fixpoint.
    lowerStmt(D->Body.get());
    Operand Cond = lowerExpr(D->Cond.get());
    Stmt &W = emit(StmtKind::While, S->loc());
    W.Cond = Cond;
    Blocks.push_back(&W.Body);
    lowerStmt(D->Body.get());
    lowerExpr(D->Cond.get());
    Blocks.pop_back();
    break;
  }
  case ast::Stmt::Kind::For:
    lowerFor(cast<ForStatement>(S));
    break;
  case ast::Stmt::Kind::ForIn:
  case ast::Stmt::Kind::ForOf:
    lowerForInOf(cast<ForInOfStatement>(S));
    break;
  case ast::Stmt::Kind::Return: {
    const auto *R = cast<ReturnStatement>(S);
    Operand V = R->Argument ? lowerExpr(R->Argument.get())
                            : Operand::undefined();
    Stmt &Ret = emit(StmtKind::Return, S->loc());
    Ret.Value = V;
    break;
  }
  case ast::Stmt::Kind::Break:
  case ast::Stmt::Kind::Continue:
    emit(StmtKind::Nop, S->loc());
    break;
  case ast::Stmt::Kind::FunctionDecl: {
    const auto *FD = cast<FunctionDeclaration>(S);
    const auto *F = cast<FunctionExpr>(FD->Function.get());
    Operand Fn = lowerFunction(F);
    // Bind the function value to its source-level name.
    Stmt &A = emit(StmtKind::Assign, S->loc());
    A.Target = F->Name;
    A.Value = Fn;
    if (Fn.isVar()) {
      auto It = VarToFunc.find(Fn.Name);
      if (It != VarToFunc.end())
        VarToFunc[F->Name] = It->second;
    }
    break;
  }
  case ast::Stmt::Kind::ClassDecl: {
    const auto *CD = cast<ClassDeclaration>(S);
    const auto *C = cast<ClassExpr>(CD->Class.get());
    Operand Cls = lowerClass(C);
    Stmt &A = emit(StmtKind::Assign, S->loc());
    A.Target = C->Name;
    A.Value = Cls;
    if (Cls.isVar()) {
      auto It = VarToClass.find(Cls.Name);
      if (It != VarToClass.end())
        VarToClass[C->Name] = It->second;
    }
    break;
  }
  case ast::Stmt::Kind::Throw:
    lowerExpr(cast<ThrowStatement>(S)->Argument.get());
    emit(StmtKind::Nop, S->loc());
    break;
  case ast::Stmt::Kind::Try:
    lowerTry(cast<TryStatement>(S));
    break;
  case ast::Stmt::Kind::Switch:
    lowerSwitch(cast<SwitchStatement>(S));
    break;
  case ast::Stmt::Kind::Labeled:
    lowerStmt(cast<LabeledStatement>(S)->Body.get());
    break;
  }
}

std::vector<StmtPtr> Normalizer::lowerToBlock(const ast::Stmt *S) {
  std::vector<StmtPtr> Out;
  Blocks.push_back(&Out);
  lowerStmt(S);
  Blocks.pop_back();
  return Out;
}

void Normalizer::lowerVarDecl(const VariableDeclaration *V) {
  for (const VarDeclarator &D : V->Declarators) {
    Operand Init = D.Init ? lowerExpr(D.Init.get()) : Operand::undefined();
    if (D.Pattern) {
      Operand Src = materialize(Init, D.Loc);
      destructure(D.Pattern.get(), Src, D.Loc);
      continue;
    }
    Stmt &A = emit(StmtKind::Assign, D.Loc);
    A.Target = D.Name;
    A.Value = Init;
    if (Init.isVar()) {
      if (auto It = VarToFunc.find(Init.Name); It != VarToFunc.end())
        VarToFunc[D.Name] = It->second;
      if (auto It = VarToClass.find(Init.Name); It != VarToClass.end())
        VarToClass[D.Name] = It->second;
      if (auto It = TempRequire.find(Init.Name); It != TempRequire.end())
        Prog->RequireAliases[D.Name] = It->second;
    }
  }
}

void Normalizer::lowerIf(const IfStatement *S) {
  Operand Cond = lowerExpr(S->Cond.get());
  Stmt &I = emit(StmtKind::If, S->loc());
  I.Cond = Cond;
  Blocks.push_back(&I.Then);
  lowerStmt(S->Then.get());
  Blocks.pop_back();
  if (S->Else) {
    Blocks.push_back(&I.Else);
    lowerStmt(S->Else.get());
    Blocks.pop_back();
  }
}

void Normalizer::lowerWhile(const WhileStatement *S) {
  Operand Cond = lowerExpr(S->Cond.get());
  Stmt &W = emit(StmtKind::While, S->loc());
  W.Cond = Cond;
  Blocks.push_back(&W.Body);
  lowerStmt(S->Body.get());
  lowerExpr(S->Cond.get()); // Re-evaluated each iteration.
  Blocks.pop_back();
}

void Normalizer::lowerFor(const ForStatement *S) {
  if (S->Init)
    lowerStmt(S->Init.get());
  Operand Cond = S->Cond ? lowerExpr(S->Cond.get()) : Operand::boolean(true);
  Stmt &W = emit(StmtKind::While, S->loc());
  W.Cond = Cond;
  Blocks.push_back(&W.Body);
  lowerStmt(S->Body.get());
  if (S->Update)
    lowerExpr(S->Update.get());
  if (S->Cond)
    lowerExpr(S->Cond.get());
  Blocks.pop_back();
}

void Normalizer::lowerForInOf(const ForInOfStatement *S) {
  Operand Obj = lowerToVar(S->Object.get());
  bool IsIn = S->kind() == ast::Stmt::Kind::ForIn;

  // The loop guard depends on the iterated object.
  std::string GuardVar = freshTemp();
  Stmt &Guard = emit(StmtKind::UnOp, S->loc());
  Guard.Target = GuardVar;
  Guard.Op = IsIn ? "keys" : "iter";
  Guard.Value = Obj;

  Stmt &W = emit(StmtKind::While, S->loc());
  W.Cond = Operand::var(GuardVar);
  Blocks.push_back(&W.Body);
  if (IsIn) {
    // `for (k in o)`: k is a property *name* of o — it depends on o.
    std::string KeyTarget = S->Variable.empty() ? freshTemp() : S->Variable;
    Stmt &Key = emit(StmtKind::UnOp, S->loc());
    Key.Target = KeyTarget;
    Key.Op = "key-of";
    Key.Value = Obj;
    if (S->Pattern)
      destructure(S->Pattern.get(), Operand::var(KeyTarget), S->loc());
  } else {
    // `for (v of o)`: v is an *element* of o — an unknown-property lookup.
    std::string ElemTarget = S->Variable.empty() ? freshTemp() : S->Variable;
    Stmt &Elem = emit(StmtKind::DynamicLookup, S->loc());
    Elem.Target = ElemTarget;
    Elem.Obj = Obj;
    Elem.PropOperand = Operand::undefined();
    if (S->Pattern)
      destructure(S->Pattern.get(), Operand::var(ElemTarget), S->loc());
  }
  lowerStmt(S->Body.get());
  Blocks.pop_back();
}

void Normalizer::lowerSwitch(const SwitchStatement *S) {
  Operand Disc = lowerExpr(S->Discriminant.get());
  (void)Disc;
  // Each case body is analyzed under its own branch; fall-through is
  // over-approximated by the if-join of all branches.
  for (const SwitchCase &C : S->Cases) {
    Operand Cond = C.Test ? lowerExpr(C.Test.get()) : Operand::boolean(true);
    Stmt &I = emit(StmtKind::If, C.Loc);
    I.Cond = Cond;
    Blocks.push_back(&I.Then);
    for (const auto &B : C.Body)
      lowerStmt(B.get());
    Blocks.pop_back();
  }
}

void Normalizer::lowerTry(const TryStatement *S) {
  // Exceptions are not modeled: try, catch, and finally bodies all analyze
  // in sequence (an over-approximation of any single real path).
  lowerStmt(S->Block.get());
  if (S->Handler) {
    if (!S->CatchParam.empty()) {
      Stmt &E = emit(StmtKind::NewObject, S->loc());
      E.Target = S->CatchParam;
    }
    lowerStmt(S->Handler.get());
  }
  if (S->Finalizer)
    lowerStmt(S->Finalizer.get());
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Operand Normalizer::materialize(Operand O, SourceLocation Loc) {
  if (O.isVar())
    return O;
  std::string T = freshTemp();
  Stmt &A = emit(StmtKind::Assign, Loc);
  A.Target = T;
  A.Value = O;
  return Operand::var(T);
}

Operand Normalizer::lowerToVar(const ast::Expr *E) {
  return materialize(lowerExpr(E), E ? E->loc() : SourceLocation());
}

Operand Normalizer::lowerExpr(const ast::Expr *E) {
  if (!E)
    return Operand::undefined();
  switch (E->kind()) {
  case ast::Expr::Kind::Number:
    return Operand::number(cast<NumberLiteral>(E)->Value);
  case ast::Expr::Kind::String:
    return Operand::string(cast<StringLiteral>(E)->Value);
  case ast::Expr::Kind::Boolean:
    return Operand::boolean(cast<BooleanLiteral>(E)->Value);
  case ast::Expr::Kind::Null:
    return Operand::null();
  case ast::Expr::Kind::Undefined:
    return Operand::undefined();
  case ast::Expr::Kind::RegExp: {
    // A regexp literal is an object value with no dependencies.
    Stmt &S = emit(StmtKind::NewObject, E->loc());
    S.Target = freshTemp();
    return Operand::var(S.Target);
  }
  case ast::Expr::Kind::Identifier:
    return Operand::var(cast<Identifier>(E)->Name);
  case ast::Expr::Kind::This:
    return Operand::var("this");
  case ast::Expr::Kind::Array:
    return lowerArrayLiteral(cast<ArrayLiteral>(E));
  case ast::Expr::Kind::Object:
    return lowerObjectLiteral(cast<ObjectLiteral>(E));
  case ast::Expr::Kind::Function:
    return lowerFunction(cast<FunctionExpr>(E));
  case ast::Expr::Kind::Arrow:
    return lowerArrow(cast<ArrowFunctionExpr>(E));
  case ast::Expr::Kind::Class:
    return lowerClass(cast<ClassExpr>(E));
  case ast::Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Operand V = lowerExpr(U->Operand.get());
    static const char *Names[] = {"-", "+", "!", "~", "typeof", "void",
                                  "delete"};
    Stmt &S = emit(StmtKind::UnOp, E->loc());
    S.Target = freshTemp();
    S.Op = Names[static_cast<int>(U->Op)];
    S.Value = V;
    return Operand::var(S.Target);
  }
  case ast::Expr::Kind::Update: {
    const auto *U = cast<UpdateExpr>(E);
    // i++ / ++i: i := i ± 1; the result approximates to i either way.
    if (const auto *Id = dyn_cast<Identifier>(U->Operand.get())) {
      Stmt &S = emit(StmtKind::BinOp, E->loc());
      S.Target = Id->Name;
      S.Op = U->IsIncrement ? "+" : "-";
      S.LHS = Operand::var(Id->Name);
      S.RHS = Operand::number(1);
      return Operand::var(Id->Name);
    }
    // o.p++ — read-modify-write on a property.
    if (const auto *M = dyn_cast<MemberExpr>(U->Operand.get())) {
      Operand Old = lowerMemberLookup(M);
      Operand ObjV = lowerToVar(M->Object.get());
      std::string T = freshTemp();
      Stmt &Add = emit(StmtKind::BinOp, E->loc());
      Add.Target = T;
      Add.Op = U->IsIncrement ? "+" : "-";
      Add.LHS = Old;
      Add.RHS = Operand::number(1);
      if (M->Computed) {
        Operand Prop = lowerExpr(M->Index.get());
        Stmt &Upd = emit(StmtKind::DynamicUpdate, E->loc());
        Upd.Obj = ObjV;
        Upd.PropOperand = Prop;
        Upd.Value = Operand::var(T);
      } else {
        Stmt &Upd = emit(StmtKind::StaticUpdate, E->loc());
        Upd.Obj = ObjV;
        Upd.Prop = M->Name;
        Upd.Value = Operand::var(T);
      }
      return Operand::var(T);
    }
    return lowerExpr(U->Operand.get());
  }
  case ast::Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Operand L = lowerExpr(B->LHS.get());
    Operand R = lowerExpr(B->RHS.get());
    static const char *Names[] = {
        "+",  "-",  "*",  "/",  "%",  "**", "==", "!=", "===", "!==", "<",
        ">",  "<=", ">=", "<<", ">>", ">>>", "&", "|",  "^",   "in",
        "instanceof"};
    Stmt &S = emit(StmtKind::BinOp, E->loc());
    S.Target = freshTemp();
    S.Op = Names[static_cast<int>(B->Op)];
    S.LHS = L;
    S.RHS = R;
    return Operand::var(S.Target);
  }
  case ast::Expr::Kind::Logical: {
    // Both sides evaluate (over-approximation); the result depends on both.
    const auto *L = cast<LogicalExpr>(E);
    Operand A = lowerExpr(L->LHS.get());
    Operand B = lowerExpr(L->RHS.get());
    static const char *Names[] = {"&&", "||", "??"};
    Stmt &S = emit(StmtKind::BinOp, E->loc());
    S.Target = freshTemp();
    S.Op = Names[static_cast<int>(L->Op)];
    S.LHS = A;
    S.RHS = B;
    return Operand::var(S.Target);
  }
  case ast::Expr::Kind::Assignment:
    return lowerAssignment(cast<AssignmentExpr>(E));
  case ast::Expr::Kind::Conditional:
    return lowerConditional(cast<ConditionalExpr>(E));
  case ast::Expr::Kind::Call:
    return lowerCall(cast<CallExpr>(E));
  case ast::Expr::Kind::New:
    return lowerNew(cast<NewExpr>(E));
  case ast::Expr::Kind::Member:
    return lowerMemberLookup(cast<MemberExpr>(E));
  case ast::Expr::Kind::Sequence: {
    Operand Last = Operand::undefined();
    for (const auto &Part : cast<SequenceExpr>(E)->Expressions)
      Last = lowerExpr(Part.get());
    return Last;
  }
  case ast::Expr::Kind::Template:
    return lowerTemplate(cast<TemplateLiteral>(E));
  case ast::Expr::Kind::TaggedTemplate: {
    const auto *T = cast<TaggedTemplateExpr>(E);
    // tag`a${x}` — model as a call of the tag with the substitutions.
    Operand Tag = lowerToVar(T->Tag.get());
    const auto *Quasi = cast<TemplateLiteral>(T->Quasi.get());
    Stmt &S = emit(StmtKind::Call, E->loc());
    S.Target = freshTemp();
    S.Callee = Tag;
    S.CalleeName = Tag.Name;
    for (const auto &Sub : Quasi->Substitutions) {
      // Arguments must be lowered before the call statement is emitted;
      // recompute rather than reorder (lowerExpr may emit statements).
      (void)Sub;
    }
    // Re-emit correctly: remove the call, lower args, then emit.
    // (Simplest: pop the just-added stmt, lower, re-add.)
    StmtPtr Call = std::move(block().back());
    block().pop_back();
    for (const auto &Sub : Quasi->Substitutions)
      Call->Args.push_back(lowerExpr(Sub.get()));
    block().push_back(std::move(Call));
    return Operand::var(block().back()->Target);
  }
  case ast::Expr::Kind::Spread:
    return lowerExpr(cast<SpreadElement>(E)->Argument.get());
  case ast::Expr::Kind::Yield: {
    const auto *Y = cast<YieldExpr>(E);
    if (!Y->Argument)
      return Operand::undefined();
    Operand V = lowerExpr(Y->Argument.get());
    Stmt &S = emit(StmtKind::UnOp, E->loc());
    S.Target = freshTemp();
    S.Op = "yield";
    S.Value = V;
    return Operand::var(S.Target);
  }
  case ast::Expr::Kind::Await: {
    // `await e` passes the value through: dependencies are preserved.
    Operand V = lowerExpr(cast<AwaitExpr>(E)->Argument.get());
    Stmt &S = emit(StmtKind::UnOp, E->loc());
    S.Target = freshTemp();
    S.Op = "await";
    S.Value = V;
    return Operand::var(S.Target);
  }
  }
  return Operand::undefined();
}

Operand Normalizer::lowerTemplate(const TemplateLiteral *T) {
  // `a${x}b${y}` lowers to ((('a' + x) + 'b') + y) + ... string folding.
  Operand Acc = Operand::string(T->Quasis.empty() ? "" : T->Quasis[0]);
  for (size_t I = 0; I < T->Substitutions.size(); ++I) {
    Operand Sub = lowerExpr(T->Substitutions[I].get());
    Stmt &S1 = emit(StmtKind::BinOp, T->loc());
    S1.Target = freshTemp();
    S1.Op = "+";
    S1.LHS = Acc;
    S1.RHS = Sub;
    Acc = Operand::var(S1.Target);
    if (I + 1 < T->Quasis.size() && !T->Quasis[I + 1].empty()) {
      Stmt &S2 = emit(StmtKind::BinOp, T->loc());
      S2.Target = freshTemp();
      S2.Op = "+";
      S2.LHS = Acc;
      S2.RHS = Operand::string(T->Quasis[I + 1]);
      Acc = Operand::var(S2.Target);
    }
  }
  return Acc;
}

Operand Normalizer::lowerConditional(const ConditionalExpr *C) {
  Operand Cond = lowerExpr(C->Cond.get());
  std::string T = freshTemp();
  Stmt &I = emit(StmtKind::If, C->loc());
  I.Cond = Cond;
  Blocks.push_back(&I.Then);
  {
    Operand V = lowerExpr(C->Then.get());
    Stmt &A = emit(StmtKind::Assign, C->loc());
    A.Target = T;
    A.Value = V;
  }
  Blocks.pop_back();
  Blocks.push_back(&I.Else);
  {
    Operand V = lowerExpr(C->Else.get());
    Stmt &A = emit(StmtKind::Assign, C->loc());
    A.Target = T;
    A.Value = V;
  }
  Blocks.pop_back();
  return Operand::var(T);
}

Operand Normalizer::lowerObjectLiteral(const ObjectLiteral *O) {
  Stmt &New = emit(StmtKind::NewObject, O->loc());
  std::string T = freshTemp();
  New.Target = T;
  for (const ObjectProperty &P : O->Properties) {
    if (const auto *Spread = dyn_cast<SpreadElement>(P.Value.get())) {
      // {...src}: unknown-property copy from src.
      Operand Src = lowerExpr(Spread->Argument.get());
      Stmt &U = emit(StmtKind::DynamicUpdate, P.Loc);
      U.Obj = Operand::var(T);
      U.PropOperand = Operand::undefined();
      U.Value = Src;
      continue;
    }
    Operand V = lowerExpr(P.Value.get());
    if (P.Computed) {
      Operand Key = lowerExpr(P.KeyExpr.get());
      Stmt &U = emit(StmtKind::DynamicUpdate, P.Loc);
      U.Obj = Operand::var(T);
      U.PropOperand = Key;
      U.Value = V;
    } else {
      Stmt &U = emit(StmtKind::StaticUpdate, P.Loc);
      U.Obj = Operand::var(T);
      U.Prop = P.Name;
      U.Value = V;
      if (V.isVar()) {
        if (auto It = VarToFunc.find(V.Name); It != VarToFunc.end())
          PropToFunc[{T, P.Name}] = It->second;
      }
    }
  }
  return Operand::var(T);
}

Operand Normalizer::lowerArrayLiteral(const ArrayLiteral *A) {
  Stmt &New = emit(StmtKind::NewObject, A->loc());
  std::string T = freshTemp();
  New.Target = T;
  size_t Index = 0;
  for (const auto &El : A->Elements) {
    if (!El) {
      ++Index;
      continue;
    }
    if (const auto *Spread = dyn_cast<SpreadElement>(El.get())) {
      Operand Src = lowerExpr(Spread->Argument.get());
      Stmt &U = emit(StmtKind::DynamicUpdate, A->loc());
      U.Obj = Operand::var(T);
      U.PropOperand = Operand::undefined();
      U.Value = Src;
      continue;
    }
    Operand V = lowerExpr(El.get());
    Stmt &U = emit(StmtKind::StaticUpdate, A->loc());
    U.Obj = Operand::var(T);
    U.Prop = std::to_string(Index++);
    U.Value = V;
  }
  return Operand::var(T);
}

void Normalizer::lowerFunctionBody(Function &Fn,
                                   const std::vector<ast::Param> &Params,
                                   const ast::Stmt *Body,
                                   const ast::Expr *ExprBody) {
  Blocks.push_back(&Fn.Body);
  unsigned PatternId = 0;
  for (const ast::Param &P : Params) {
    if (!P.Name.empty()) {
      Fn.Params.push_back(P.Name);
      continue;
    }
    // Destructuring parameter: bind a synthetic name, then destructure.
    std::string Synth = "%p" + std::to_string(PatternId++);
    Fn.Params.push_back(Synth);
    if (P.Default)
      destructure(P.Default.get(), Operand::var(Synth), P.Loc);
  }
  if (Body)
    lowerStmt(Body);
  if (ExprBody) {
    Operand V = lowerExpr(ExprBody);
    Stmt &R = emit(StmtKind::Return, ExprBody->loc());
    R.Value = V;
  }
  Blocks.pop_back();
}

Operand Normalizer::lowerFunction(const FunctionExpr *F) {
  auto Fn = std::make_shared<Function>();
  Fn->OriginalName = F->Name;
  Fn->Name = freshFuncName(F->Name);
  Fn->Loc = F->loc();
  Fn->Index = freshIndex();
  lowerFunctionBody(*Fn, F->Params, F->Body.get(), nullptr);
  Prog->Functions[Fn->Name] = Fn;

  Stmt &S = emit(StmtKind::FuncDef, F->loc());
  S.Target = freshTemp();
  S.Func = Fn;
  VarToFunc[S.Target] = Fn->Name;
  return Operand::var(S.Target);
}

Operand Normalizer::lowerArrow(const ArrowFunctionExpr *A) {
  auto Fn = std::make_shared<Function>();
  Fn->Name = freshFuncName("arrow");
  Fn->Loc = A->loc();
  Fn->Index = freshIndex();
  lowerFunctionBody(*Fn, A->Params, A->Body.get(), A->ExprBody.get());
  Prog->Functions[Fn->Name] = Fn;

  Stmt &S = emit(StmtKind::FuncDef, A->loc());
  S.Target = freshTemp();
  S.Func = Fn;
  VarToFunc[S.Target] = Fn->Name;
  return Operand::var(S.Target);
}

Operand Normalizer::lowerClass(const ClassExpr *C) {
  // class C { constructor(..) {..} m(..) {..} } lowers to:
  //   C := <constructor function>; C.prototype := {}; C.prototype.m := <fn>
  std::string ClassName = C->Name.empty() ? freshFuncName("class") : C->Name;
  std::string CtorVar;
  std::vector<std::string> Methods;

  // Find the constructor (or synthesize an empty one).
  const ClassMember *Ctor = nullptr;
  for (const ClassMember &M : C->Members)
    if (M.IsConstructor)
      Ctor = &M;

  if (Ctor && ast::dyn_cast<FunctionExpr>(Ctor->Value.get())) {
    Operand V = lowerFunction(ast::cast<FunctionExpr>(Ctor->Value.get()));
    CtorVar = V.Name;
  } else {
    auto Fn = std::make_shared<Function>();
    Fn->OriginalName = ClassName;
    Fn->Name = freshFuncName(ClassName + ".constructor");
    Fn->Loc = C->loc();
    Fn->Index = freshIndex();
    Prog->Functions[Fn->Name] = Fn;
    Stmt &S = emit(StmtKind::FuncDef, C->loc());
    S.Target = freshTemp();
    S.Func = Fn;
    VarToFunc[S.Target] = Fn->Name;
    CtorVar = S.Target;
  }
  if (auto It = VarToFunc.find(CtorVar); It != VarToFunc.end())
    Methods.push_back(It->second);

  // C.prototype := {}
  Stmt &ProtoNew = emit(StmtKind::NewObject, C->loc());
  ProtoNew.Target = freshTemp();
  Stmt &ProtoSet = emit(StmtKind::StaticUpdate, C->loc());
  ProtoSet.Obj = Operand::var(CtorVar);
  ProtoSet.Prop = "prototype";
  ProtoSet.Value = Operand::var(ProtoNew.Target);

  for (const ClassMember &M : C->Members) {
    if (M.IsConstructor || !M.Value)
      continue;
    Operand V = lowerExpr(M.Value.get());
    Stmt &Set = emit(StmtKind::StaticUpdate, M.Loc);
    Set.Obj = M.IsStatic ? Operand::var(CtorVar)
                         : Operand::var(ProtoNew.Target);
    Set.Prop = M.Name;
    Set.Value = V;
    if (V.isVar()) {
      if (auto It = VarToFunc.find(V.Name); It != VarToFunc.end())
        Methods.push_back(It->second);
    }
  }
  ClassMethods[ClassName] = Methods;
  Prog->ClassMethodsByVar[CtorVar] = Methods;
  VarToClass[CtorVar] = ClassName;
  return Operand::var(CtorVar);
}

void Normalizer::destructure(const ast::Expr *Pattern, const Operand &Source,
                             SourceLocation Loc) {
  if (const auto *O = dyn_cast<ObjectLiteral>(Pattern)) {
    for (const ObjectProperty &P : O->Properties) {
      if (const auto *Spread = dyn_cast<SpreadElement>(P.Value.get())) {
        // `...rest` receives the remaining properties: depends on Source.
        if (const auto *Id = dyn_cast<Identifier>(Spread->Argument.get())) {
          Stmt &S = emit(StmtKind::UnOp, P.Loc);
          S.Target = Id->Name;
          S.Op = "rest";
          S.Value = Source;
        }
        continue;
      }
      // Binding target: `{a}`, `{a: b}`, `{a: {nested}}`, `{a = dflt}`.
      std::string Prop = P.Name;
      const ast::Expr *Target = P.Value.get();
      std::string BindName;
      if (const auto *Id = dyn_cast<Identifier>(Target))
        BindName = Id->Name;
      else if (isa<ObjectLiteral>(Target) || isa<ArrayLiteral>(Target)) {
        std::string T = freshTemp();
        Stmt &L = emit(StmtKind::StaticLookup, P.Loc);
        L.Target = T;
        L.Obj = Source;
        L.Prop = Prop;
        destructure(Target, Operand::var(T), P.Loc);
        continue;
      } else {
        // `{a = default}`: bind `a` from the property; the default's
        // dependencies are joined in.
        BindName = Prop;
        lowerExpr(Target);
      }
      Stmt &L = emit(StmtKind::StaticLookup, P.Loc);
      L.Target = BindName;
      L.Obj = Source;
      L.Prop = Prop;
      // Destructured requires: const {exec} = require('child_process').
      if (Source.isVar()) {
        if (auto It = TempRequire.find(Source.Name); It != TempRequire.end())
          Prog->RequireAliases[BindName] = It->second + "." + Prop;
        else if (auto It2 = Prog->RequireAliases.find(Source.Name);
                 It2 != Prog->RequireAliases.end())
          Prog->RequireAliases[BindName] = It2->second + "." + Prop;
      }
    }
    return;
  }
  if (const auto *A = dyn_cast<ArrayLiteral>(Pattern)) {
    size_t Index = 0;
    for (const auto &El : A->Elements) {
      if (!El) {
        ++Index;
        continue;
      }
      if (const auto *Spread = dyn_cast<SpreadElement>(El.get())) {
        if (const auto *Id = dyn_cast<Identifier>(Spread->Argument.get())) {
          Stmt &S = emit(StmtKind::UnOp, Loc);
          S.Target = Id->Name;
          S.Op = "rest";
          S.Value = Source;
        }
        ++Index;
        continue;
      }
      if (const auto *Id = dyn_cast<Identifier>(El.get())) {
        Stmt &L = emit(StmtKind::StaticLookup, Loc);
        L.Target = Id->Name;
        L.Obj = Source;
        L.Prop = std::to_string(Index);
      } else if (isa<ObjectLiteral>(El.get()) || isa<ArrayLiteral>(El.get())) {
        std::string T = freshTemp();
        Stmt &L = emit(StmtKind::StaticLookup, Loc);
        L.Target = T;
        L.Obj = Source;
        L.Prop = std::to_string(Index);
        destructure(El.get(), Operand::var(T), Loc);
      } else if (const auto *Dflt = dyn_cast<AssignmentExpr>(El.get())) {
        // `[a = 1]`
        if (const auto *Id2 = dyn_cast<Identifier>(Dflt->Target.get())) {
          Stmt &L = emit(StmtKind::StaticLookup, Loc);
          L.Target = Id2->Name;
          L.Obj = Source;
          L.Prop = std::to_string(Index);
        }
      }
      ++Index;
    }
    return;
  }
  Diags.warning(Loc, "unsupported destructuring pattern ignored");
}

void Normalizer::exportFunctionValue(const std::string &ExportName,
                                     const Operand &Value) {
  if (!Value.isVar())
    return;
  if (auto It = VarToFunc.find(Value.Name); It != VarToFunc.end()) {
    Prog->Exports.push_back({ExportName, It->second});
    return;
  }
  if (auto It = VarToClass.find(Value.Name); It != VarToClass.end()) {
    auto MIt = ClassMethods.find(It->second);
    if (MIt != ClassMethods.end())
      for (const std::string &Method : MIt->second)
        Prog->Exports.push_back({ExportName + "." + Method, Method});
    return;
  }
  // `module.exports = obj` where obj is an object literal temp.
  bool Found = false;
  for (const auto &[Key, FnName] : PropToFunc) {
    if (Key.first == Value.Name) {
      Prog->Exports.push_back({Key.second, FnName});
      Found = true;
    }
  }
  if (!Found) {
    // Unknown value: remember the variable so the scanner can fall back.
    Prog->Exports.push_back({ExportName, ""});
  }
}

void Normalizer::recordExportIfAny(const Operand &Obj, const std::string &Prop,
                                   const Operand &Value) {
  if (!Obj.isVar())
    return;
  if (Obj.Name == "module" && Prop == "exports") {
    exportFunctionValue("default", Value);
    return;
  }
  if (Obj.Name == "exports") {
    exportFunctionValue(Prop, Value);
    return;
  }
  // `module.exports.n = f` appears as a lookup of module.exports into a
  // temp, then a static update on that temp; recognize the temp.
  if (ModuleExportsVars.count(Obj.Name))
    exportFunctionValue(Prop, Value);
}

Operand Normalizer::lowerAssignment(const AssignmentExpr *A) {
  // Pattern targets: `[a, b] = f()`, `({a} = o)`.
  if (isa<ObjectLiteral>(A->Target.get()) ||
      isa<ArrayLiteral>(A->Target.get())) {
    Operand V = lowerToVar(A->Value.get());
    destructure(A->Target.get(), V, A->loc());
    return V;
  }

  if (const auto *Id = dyn_cast<Identifier>(A->Target.get())) {
    Operand V = lowerExpr(A->Value.get());
    if (A->IsCompound || A->IsLogical) {
      Stmt &S = emit(StmtKind::BinOp, A->loc());
      S.Target = Id->Name;
      S.Op = A->IsLogical ? "||" : "+";
      S.LHS = Operand::var(Id->Name);
      S.RHS = V;
      return Operand::var(Id->Name);
    }
    Stmt &S = emit(StmtKind::Assign, A->loc());
    S.Target = Id->Name;
    S.Value = V;
    if (V.isVar()) {
      if (auto It = VarToFunc.find(V.Name); It != VarToFunc.end())
        VarToFunc[Id->Name] = It->second;
      if (auto It = VarToClass.find(V.Name); It != VarToClass.end())
        VarToClass[Id->Name] = It->second;
      if (auto It = TempRequire.find(V.Name); It != TempRequire.end())
        Prog->RequireAliases[Id->Name] = It->second;
    }
    return Operand::var(Id->Name);
  }

  if (const auto *M = dyn_cast<MemberExpr>(A->Target.get())) {
    Operand ObjV = lowerToVar(M->Object.get());
    Operand V = lowerExpr(A->Value.get());
    if (A->IsCompound || A->IsLogical) {
      // o.p += v: read, combine, write.
      Operand Old;
      std::string T = freshTemp();
      if (M->Computed) {
        Operand Prop = lowerExpr(M->Index.get());
        Stmt &L = emit(StmtKind::DynamicLookup, A->loc());
        L.Target = T;
        L.Obj = ObjV;
        L.PropOperand = Prop;
        Old = Operand::var(T);
        std::string T2 = freshTemp();
        Stmt &B = emit(StmtKind::BinOp, A->loc());
        B.Target = T2;
        B.Op = "+";
        B.LHS = Old;
        B.RHS = V;
        Stmt &U = emit(StmtKind::DynamicUpdate, A->loc());
        U.Obj = ObjV;
        U.PropOperand = Prop;
        U.Value = Operand::var(T2);
        return Operand::var(T2);
      }
      Stmt &L = emit(StmtKind::StaticLookup, A->loc());
      L.Target = T;
      L.Obj = ObjV;
      L.Prop = M->Name;
      std::string T2 = freshTemp();
      Stmt &B = emit(StmtKind::BinOp, A->loc());
      B.Target = T2;
      B.Op = "+";
      B.LHS = Operand::var(T);
      B.RHS = V;
      Stmt &U = emit(StmtKind::StaticUpdate, A->loc());
      U.Obj = ObjV;
      U.Prop = M->Name;
      U.Value = Operand::var(T2);
      return Operand::var(T2);
    }
    if (M->Computed) {
      Operand Prop = lowerExpr(M->Index.get());
      Stmt &U = emit(StmtKind::DynamicUpdate, A->loc());
      U.Obj = ObjV;
      U.PropOperand = Prop;
      U.Value = V;
      return V;
    }
    Stmt &U = emit(StmtKind::StaticUpdate, A->loc());
    U.Obj = ObjV;
    U.Prop = M->Name;
    U.Value = V;
    recordExportIfAny(ObjV, M->Name, V);
    if (V.isVar()) {
      if (auto It = VarToFunc.find(V.Name); It != VarToFunc.end())
        PropToFunc[{ObjV.Name, M->Name}] = It->second;
    }
    return V;
  }

  Diags.warning(A->loc(), "unsupported assignment target ignored");
  lowerExpr(A->Value.get());
  return Operand::undefined();
}

std::string Normalizer::calleePath(const ast::Expr *Callee) const {
  // Build `a.b.c` textual path; resolve the root through require aliases.
  std::vector<std::string> Parts;
  const ast::Expr *E = Callee;
  while (const auto *M = dyn_cast<MemberExpr>(E)) {
    if (M->Computed)
      return "";
    Parts.push_back(M->Name);
    E = M->Object.get();
  }
  const auto *Id = dyn_cast<Identifier>(E);
  if (!Id)
    return "";
  std::string Root = Id->Name;
  if (auto It = Prog->RequireAliases.find(Root);
      It != Prog->RequireAliases.end())
    Root = It->second;
  std::string Path = Root;
  for (auto It = Parts.rbegin(); It != Parts.rend(); ++It)
    Path += "." + *It;
  return Path;
}

Operand Normalizer::lowerCall(const CallExpr *C) {
  // require('m') — record the alias and model the module as a fresh object.
  if (const auto *Id = dyn_cast<Identifier>(C->Callee.get())) {
    if (Id->Name == "require" && C->Arguments.size() == 1) {
      if (const auto *Mod = dyn_cast<StringLiteral>(C->Arguments[0].get())) {
        Stmt &S = emit(StmtKind::NewObject, C->loc());
        S.Target = freshTemp();
        S.RequireModule = Mod->Value;
        TempRequire[S.Target] = Mod->Value;
        return Operand::var(S.Target);
      }
      // Dynamic require: a code-injection sink — keep it as a call.
    }
  }

  std::string Path = calleePath(C->Callee.get());
  std::string Name;
  Operand CalleeV;
  Operand ReceiverV;

  if (const auto *M = dyn_cast<MemberExpr>(C->Callee.get())) {
    if (!M->Computed)
      Name = M->Name;
    // Evaluate the method lookup; the receiver also flows into the call.
    ReceiverV = lowerToVar(M->Object.get());
    CalleeV = lowerMemberLookupOn(M, ReceiverV);
  } else if (const auto *Id = dyn_cast<Identifier>(C->Callee.get())) {
    Name = Id->Name;
    CalleeV = Operand::var(Id->Name);
  } else {
    CalleeV = lowerToVar(C->Callee.get());
  }

  std::vector<Operand> Args;
  for (const auto &A : C->Arguments)
    Args.push_back(lowerExpr(A.get()));

  Stmt &S = emit(StmtKind::Call, C->loc());
  S.Target = freshTemp();
  S.Callee = CalleeV;
  S.Receiver = ReceiverV;
  S.CalleeName = Name;
  S.CalleePath = Path;
  S.Args = std::move(Args);
  return Operand::var(S.Target);
}

Operand Normalizer::lowerNew(const NewExpr *N) {
  std::string Path = calleePath(N->Callee.get());
  std::string Name;
  Operand CalleeV;
  if (const auto *Id = dyn_cast<Identifier>(N->Callee.get())) {
    Name = Id->Name;
    CalleeV = Operand::var(Id->Name);
  } else if (const auto *M = dyn_cast<MemberExpr>(N->Callee.get())) {
    if (!M->Computed)
      Name = M->Name;
    CalleeV = lowerMemberLookup(M);
  } else {
    CalleeV = lowerToVar(N->Callee.get());
  }
  std::vector<Operand> Args;
  for (const auto &A : N->Arguments)
    Args.push_back(lowerExpr(A.get()));
  Stmt &S = emit(StmtKind::Call, N->loc());
  S.Target = freshTemp();
  S.Callee = CalleeV;
  S.CalleeName = Name;
  S.CalleePath = Path;
  S.Args = std::move(Args);
  S.IsNew = true;
  return Operand::var(S.Target);
}

Operand Normalizer::lowerMemberLookup(const MemberExpr *M) {
  Operand ObjV = lowerToVar(M->Object.get());
  return lowerMemberLookupOn(M, ObjV);
}

Operand Normalizer::lowerMemberLookupOn(const MemberExpr *M, Operand ObjV) {
  std::string T = freshTemp();
  if (M->Computed) {
    Operand Prop = lowerExpr(M->Index.get());
    Stmt &L = emit(StmtKind::DynamicLookup, M->loc());
    L.Target = T;
    L.Obj = ObjV;
    L.PropOperand = Prop;
  } else {
    Stmt &L = emit(StmtKind::StaticLookup, M->loc());
    L.Target = T;
    L.Obj = ObjV;
    L.Prop = M->Name;
    // Track `var me = module.exports` for later `me.f = ...` exports, and
    // propagate require aliases through member lookups (`cp.exec`).
    if (ObjV.isVar()) {
      if (ObjV.Name == "module" && M->Name == "exports")
        ModuleExportsVars.insert(T);
      if (auto It = Prog->RequireAliases.find(ObjV.Name);
          It != Prog->RequireAliases.end())
        Prog->RequireAliases[T] = It->second + "." + M->Name;
      if (auto It = TempRequire.find(ObjV.Name); It != TempRequire.end())
        Prog->RequireAliases[T] = It->second + "." + M->Name;
    }
  }
  return Operand::var(T);
}
