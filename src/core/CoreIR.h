//===- core/CoreIR.h - Core JavaScript IR ------------------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Core JavaScript (§3.2), the input language of the MDG
/// analysis:
///
///   e ::= v | x
///   s ::= x := e | x := e1 ⊕ e2 | x := e.p | x := e1[e2]
///       | e1.p := e2 | e1[e2] := e3 | x := {}_i
///       | if (e) { s1 } else { s2 } | while (e) { s } | s1; s2
///       | x := e_f(e1, ..., en)
///
/// extended with the constructs needed to analyze real npm packages:
/// function definitions, return, and `for (x in e)` key iteration. Every
/// statement that computes a new value or object carries a unique index `i`
/// used for allocation-site abstraction ([NEW OBJECT] always returns the
/// same abstract location for the same `i`).
///
/// The IR is deliberately flat (quadruple style): each statement names at
/// most one operation over variable/literal operands, which keeps both the
/// abstract and the concrete interpreters to one small switch.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_CORE_COREIR_H
#define GJS_CORE_COREIR_H

#include "support/SourceLocation.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gjs {
namespace core {

/// A unique statement index (the `i` subscript of the paper's syntax).
using StmtIndex = uint32_t;

//===----------------------------------------------------------------------===//
// Operands
//===----------------------------------------------------------------------===//

/// A Core JavaScript expression: a variable or a literal value.
struct Operand {
  enum class Kind { Var, Number, String, Boolean, Null, Undefined };

  Kind K = Kind::Undefined;
  std::string Name; // Variable name or string value.
  double Num = 0;
  bool Bool = false;

  static Operand var(std::string Name) {
    Operand O;
    O.K = Kind::Var;
    O.Name = std::move(Name);
    return O;
  }
  static Operand number(double V) {
    Operand O;
    O.K = Kind::Number;
    O.Num = V;
    return O;
  }
  static Operand string(std::string V) {
    Operand O;
    O.K = Kind::String;
    O.Name = std::move(V);
    return O;
  }
  static Operand boolean(bool V) {
    Operand O;
    O.K = Kind::Boolean;
    O.Bool = V;
    return O;
  }
  static Operand null() {
    Operand O;
    O.K = Kind::Null;
    return O;
  }
  static Operand undefined() { return Operand(); }

  bool isVar() const { return K == Kind::Var; }
  bool isLiteral() const { return !isVar(); }

  /// Printable form for IR dumps.
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
struct Function;

enum class StmtKind {
  /// x := e
  Assign,
  /// x := e1 ⊕ e2
  BinOp,
  /// x := ⊕ e (unary; also models "depends on" summaries like for-in keys)
  UnOp,
  /// x := {}_i
  NewObject,
  /// x := e.p
  StaticLookup,
  /// x := e1[e2]
  DynamicLookup,
  /// e1.p := e2
  StaticUpdate,
  /// e1[e2] := e3
  DynamicUpdate,
  /// x := e_f(e1, ..., en)
  Call,
  /// x := function f(...) { ... } — introduces a function value
  FuncDef,
  /// return e
  Return,
  /// if (e) { Then } else { Else }
  If,
  /// while (e) { Body }
  While,
  /// no-op (lowered break/continue/debugger)
  Nop,
};

/// Provenance tag for statements produced (or consumed) by the async
/// lowering pass (core/AsyncLower.h). Ordinary statements stay None. The
/// tags let the `async` lint pass check the lowering's well-formedness
/// (every suspend has a matching resume, reactions call real values, no
/// orphan promise allocations) without re-deriving the rewrite.
enum class AsyncRole : uint8_t {
  None,
  AwaitSuspend,  ///< `%a := p.%promise` — read the settled value.
  AwaitResume,   ///< `x := p await %a` — join promise and settled value.
  ReactionCall,  ///< Direct call of a registered reaction/executor.
  PromiseAlloc,  ///< Allocation of a (chained) promise object.
  ResolverDef,   ///< Synthesized resolve/reject function definition.
  PromiseJoin,   ///< `x := x promise-join %p` — deliberate reassignment
                 ///< folding the modeled promise into the original result.
};

/// Stable lowercase tag names for IR dumps and lint messages.
const char *asyncRoleName(AsyncRole R);

/// One Core JavaScript statement. Field usage depends on K; unused fields
/// stay empty. Blocks are vectors of statements (the paper's `s1; s2`).
struct Stmt {
  StmtKind K = StmtKind::Nop;
  StmtIndex Index = 0;      // Unique id for allocation-site abstraction.
  SourceLocation Loc;       // Position in the original JS source.
  AsyncRole Async = AsyncRole::None; // Async-lowering provenance.

  std::string Target;       // `x` for statements that bind a variable.
  Operand Obj;              // e / e1 (object being read or written).
  std::string Prop;         // `p` for static lookup/update.
  Operand PropOperand;      // e2 for dynamic lookup/update.
  Operand Value;            // RHS value: e, e2, or e3 depending on K.
  Operand LHS, RHS;         // Binary operands.
  std::string Op;           // Operator spelling (⊕) for dumps.

  Operand Callee;           // Call target (always a variable after lowering).
  Operand Receiver;         // Method-call receiver (`o` in o.m(..)), if any.
  std::string CalleeName;   // Syntactic callee name, e.g. "exec".
  std::string CalleePath;   // Dotted path, e.g. "child_process.exec".
  std::vector<Operand> Args;
  bool IsNew = false;       // `new` call.

  std::shared_ptr<Function> Func; // FuncDef payload.

  /// For NewObject statements produced from `require('<module>')`: the
  /// requested module name. The package-level builder links relative
  /// requires to the required module's exports object.
  std::string RequireModule;

  Operand Cond;             // if/while condition.
  std::vector<StmtPtr> Then, Else, Body;

  explicit Stmt(StmtKind K) : K(K) {}
};

/// A function in Core JavaScript. Nested function definitions appear as
/// FuncDef statements inside Body and also share ownership through the
/// program's function registry.
struct Function {
  std::string Name;               // Unique within the program.
  std::string OriginalName;       // Source-level name ("" for anonymous).
  std::vector<std::string> Params;
  std::vector<StmtPtr> Body;
  SourceLocation Loc;
  StmtIndex Index = 0;            // Allocation site of the function value.
};

/// An exported entry point: `module.exports = f`, `exports.n = f`, etc.
/// Exported functions' parameters are the analysis' taint sources (§4).
struct ExportEntry {
  std::string ExportName;   // Name under which the function is exported.
  std::string FunctionName; // Core function name.
};

/// A whole normalized module.
struct Program {
  std::vector<StmtPtr> TopLevel;
  /// All functions (top-level and nested), keyed by unique name.
  std::map<std::string, std::shared_ptr<Function>> Functions;
  std::vector<ExportEntry> Exports;
  /// Module aliases from `x = require('m')`: variable -> module name; also
  /// destructured members as `exec -> child_process.exec`.
  std::map<std::string, std::string> RequireAliases;
  /// Constructor variable -> method core-function names (for exported
  /// classes: each method becomes an analysis entry point).
  std::map<std::string, std::vector<std::string>> ClassMethodsByVar;
  /// Total number of statement indices allocated (allocation sites).
  StmtIndex NumIndices = 0;
};

/// Renders the program as readable Core JavaScript text (tests, debugging).
std::string dump(const Program &P);
std::string dump(const std::vector<StmtPtr> &Block, int Depth = 0);

/// Counts statements recursively (used for size accounting).
size_t countStmts(const std::vector<StmtPtr> &Block);

} // namespace core
} // namespace gjs

#endif // GJS_CORE_COREIR_H
