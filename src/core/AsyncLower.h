//===- core/AsyncLower.h - Promise/async lowering to Core JS -----*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The async lowering pass: desugars JavaScript's promise and async/await
/// forms into the call/return structure the MDG builder already tracks, so
/// taint flows that cross an `await`, a `.then()` chain, or a promise
/// executor appear in the graph without any new graph machinery.
///
/// The settled value of a promise is modeled as a synthetic `%promise`
/// property on the promise object (allocation-site abstraction makes the
/// property read/write pair line up across function boundaries):
///
///  - `x := await p` becomes a suspend/resume sequence plus an alias join:
///        %a1 := p.%promise         [suspend — stored settled value]
///        %a2 := %a1.%promise       [suspend — one-level flattening]
///        %a3 := %a1 await %a2      [resume]
///        x   := p promise-join %a3 [join — alias union with p itself]
///    Flattening is read-side (a second settle *write* would create a newer
///    object version shadowing the first store — the very overwrite pattern
///    the UntaintedPath exclusion prunes); the final join keeps the
///    pre-pass passthrough behavior (awaiting a plain tainted value still
///    flows) while adding the unwrap. The builder interprets `promise-join`
///    as a store-level alias union, not a fresh value node, so the settled
///    `%promise` property stays reachable through x.
///
///  - `x := p.then(cb)` (and .catch/.finally) keeps the original call (the
///    receiver may be a plain object with a user-defined `then`) and
///    registers the reaction: the settled value is extracted with the
///    suspend/resume sequence, each function-valued handler is invoked
///    directly with it [reaction], and a fresh chained promise [promise] is
///    settled exactly once with the alias union of the handlers' results
///    and the source value (rejection/identity passthrough). The chained
///    promise joins into x.
///
///  - `x := new Promise(ex)` synthesizes resolve/reject functions
///    [resolver] — each a single `%promise` store of its parameter — then
///    invokes the executor with them [reaction]: resolve/reject parameter
///    linking.
///
///  - `Promise.resolve/reject(v)` settle a fresh promise with v;
///    `Promise.all/allSettled/race/any(a)` settle with the alias union of
///    an unknown element's settled value and the array itself.
///
/// Handlers that are not statically function values stay as ordinary calls
/// of an unknown callee — the call graph classifies those sites as
/// Unresolved (the `UnresolvedCallback` soundness valve), which blocks
/// pruning on any path through them.
///
/// The pass runs per module, immediately after normalization, and extends
/// the program's statement-index space (Program::NumIndices) — callers that
/// thread disjoint index ranges across modules must run it before reading
/// NumIndices for the next module.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_CORE_ASYNCLOWER_H
#define GJS_CORE_ASYNCLOWER_H

#include "core/CoreIR.h"
#include "support/Deadline.h"

#include <cstdint>
#include <string>

namespace gjs {
namespace core {

/// What the pass did — feeds the async.* observability counters.
struct AsyncLowerStats {
  uint64_t AwaitsLowered = 0;       ///< await sites rewritten.
  uint64_t ReactionsLinked = 0;     ///< handlers resolved to a known function.
  uint64_t CallbacksUnresolved = 0; ///< handlers left to the soundness valve.

  AsyncLowerStats &operator+=(const AsyncLowerStats &O) {
    AwaitsLowered += O.AwaitsLowered;
    ReactionsLinked += O.ReactionsLinked;
    CallbacksUnresolved += O.CallbacksUnresolved;
    return *this;
  }
};

/// Rewrites every async form in P in place. ModulePrefix qualifies the
/// synthesized resolver function names (same prefix the Normalizer was
/// given, so multi-module scans keep unique function names). A Deadline,
/// when given, aborts the walk cooperatively.
AsyncLowerStats lowerAsync(Program &P, const std::string &ModulePrefix = "",
                           Deadline *D = nullptr);

} // namespace core
} // namespace gjs

#endif // GJS_CORE_ASYNCLOWER_H
