//===- core/CoreIR.cpp - Core JavaScript IR dumping ------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/CoreIR.h"

#include <sstream>

using namespace gjs;
using namespace gjs::core;

std::string Operand::str() const {
  switch (K) {
  case Kind::Var:
    return Name;
  case Kind::Number: {
    std::ostringstream OS;
    OS << Num;
    return OS.str();
  }
  case Kind::String:
    return "'" + Name + "'";
  case Kind::Boolean:
    return Bool ? "true" : "false";
  case Kind::Null:
    return "null";
  case Kind::Undefined:
    return "undefined";
  }
  return "?";
}

namespace {

void dumpStmt(const Stmt &S, std::ostringstream &OS, int Depth);

void dumpBlock(const std::vector<StmtPtr> &Block, std::ostringstream &OS,
               int Depth) {
  for (const StmtPtr &S : Block)
    dumpStmt(*S, OS, Depth);
}

void indent(std::ostringstream &OS, int Depth) {
  for (int I = 0; I < Depth; ++I)
    OS << "  ";
}

void dumpStmt(const Stmt &S, std::ostringstream &OS, int Depth) {
  indent(OS, Depth);
  switch (S.K) {
  case StmtKind::Assign:
    OS << S.Target << " := " << S.Value.str();
    break;
  case StmtKind::BinOp:
    OS << S.Target << " :=_" << S.Index << " " << S.LHS.str() << " " << S.Op
       << " " << S.RHS.str();
    break;
  case StmtKind::UnOp:
    OS << S.Target << " :=_" << S.Index << " " << S.Op << " "
       << S.Value.str();
    break;
  case StmtKind::NewObject:
    OS << S.Target << " :=_" << S.Index << " {}";
    break;
  case StmtKind::StaticLookup:
    OS << S.Target << " :=_" << S.Index << " " << S.Obj.str() << "." << S.Prop;
    break;
  case StmtKind::DynamicLookup:
    OS << S.Target << " :=_" << S.Index << " " << S.Obj.str() << "["
       << S.PropOperand.str() << "]";
    break;
  case StmtKind::StaticUpdate:
    OS << S.Obj.str() << "." << S.Prop << " :=_" << S.Index << " "
       << S.Value.str();
    break;
  case StmtKind::DynamicUpdate:
    OS << S.Obj.str() << "[" << S.PropOperand.str() << "] :=_" << S.Index
       << " " << S.Value.str();
    break;
  case StmtKind::Call: {
    OS << S.Target << " :=_" << S.Index << " " << (S.IsNew ? "new " : "")
       << S.Callee.str() << "(";
    for (size_t I = 0; I < S.Args.size(); ++I) {
      if (I)
        OS << ", ";
      OS << S.Args[I].str();
    }
    OS << ")";
    if (!S.CalleePath.empty())
      OS << " /* " << S.CalleePath << " */";
    break;
  }
  case StmtKind::FuncDef: {
    OS << S.Target << " :=_" << S.Index << " function " << S.Func->Name
       << "(";
    for (size_t I = 0; I < S.Func->Params.size(); ++I) {
      if (I)
        OS << ", ";
      OS << S.Func->Params[I];
    }
    OS << ") {\n";
    dumpBlock(S.Func->Body, OS, Depth + 1);
    indent(OS, Depth);
    OS << "}";
    break;
  }
  case StmtKind::Return:
    OS << "return " << S.Value.str();
    break;
  case StmtKind::If:
    OS << "if (" << S.Cond.str() << ") {\n";
    dumpBlock(S.Then, OS, Depth + 1);
    indent(OS, Depth);
    OS << "}";
    if (!S.Else.empty()) {
      OS << " else {\n";
      dumpBlock(S.Else, OS, Depth + 1);
      indent(OS, Depth);
      OS << "}";
    }
    break;
  case StmtKind::While:
    OS << "while (" << S.Cond.str() << ") {\n";
    dumpBlock(S.Body, OS, Depth + 1);
    indent(OS, Depth);
    OS << "}";
    break;
  case StmtKind::Nop:
    OS << "nop";
    break;
  }
  if (S.Async != AsyncRole::None)
    OS << " /* async:" << asyncRoleName(S.Async) << " */";
  OS << '\n';
}

size_t countBlock(const std::vector<StmtPtr> &Block) {
  size_t N = 0;
  for (const StmtPtr &S : Block) {
    ++N;
    N += countBlock(S->Then);
    N += countBlock(S->Else);
    N += countBlock(S->Body);
    if (S->K == StmtKind::FuncDef && S->Func)
      N += countBlock(S->Func->Body);
  }
  return N;
}

} // namespace

const char *core::asyncRoleName(AsyncRole R) {
  switch (R) {
  case AsyncRole::None:
    return "none";
  case AsyncRole::AwaitSuspend:
    return "suspend";
  case AsyncRole::AwaitResume:
    return "resume";
  case AsyncRole::ReactionCall:
    return "reaction";
  case AsyncRole::PromiseAlloc:
    return "promise";
  case AsyncRole::ResolverDef:
    return "resolver";
  case AsyncRole::PromiseJoin:
    return "join";
  }
  return "?";
}

std::string core::dump(const std::vector<StmtPtr> &Block, int Depth) {
  std::ostringstream OS;
  dumpBlock(Block, OS, Depth);
  return OS.str();
}

std::string core::dump(const Program &P) {
  std::ostringstream OS;
  dumpBlock(P.TopLevel, OS, 0);
  if (!P.Exports.empty()) {
    OS << "// exports:";
    for (const ExportEntry &E : P.Exports)
      OS << " " << E.ExportName << "=" << E.FunctionName;
    OS << '\n';
  }
  return OS.str();
}

size_t core::countStmts(const std::vector<StmtPtr> &Block) {
  return countBlock(Block);
}
