//===- frontend/Parser.h - JavaScript parser ---------------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent JavaScript parser producing the AST of frontend/AST.h.
/// Covers the language subset npm package code uses (see DESIGN.md):
/// functions/closures/arrows, classes (methods), object and array literals,
/// static and computed member access, all expression operators, template
/// literals, destructuring in declarations and parameters, the full
/// statement set including try/catch and switch, and automatic semicolon
/// insertion.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_FRONTEND_PARSER_H
#define GJS_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace gjs {

class Deadline;

namespace obs {
class TraceRecorder;
}

/// Parses one JavaScript source buffer into an ast::Program.
///
/// A scan-level Deadline may be attached; the parser checkpoints it per
/// statement and, on expiry, stops consuming input and returns the partial
/// program parsed so far (the fault-tolerant runtime's cooperative
/// cancellation — no phase may run past the per-package budget).
///
/// An optional obs::TraceRecorder records "lex" and "ast" child spans (the
/// two frontend sub-phases of the pipeline trace).
class Parser {
public:
  Parser(std::string Source, DiagnosticEngine &Diags,
         Deadline *ScanDeadline = nullptr, obs::TraceRecorder *Trace = nullptr);

  /// Parses the whole buffer. Always returns a Program (possibly partial);
  /// check the diagnostic engine for errors.
  std::unique_ptr<ast::Program> parseProgram();

private:
  std::vector<Token> Tokens;
  size_t Cur = 0;
  DiagnosticEngine &Diags;
  Deadline *ScanDeadline = nullptr;
  obs::TraceRecorder *Trace = nullptr;

  /// Checkpoints the scan deadline (one unit per statement). True = stop.
  bool deadlineExpired();

  //===--------------------------------------------------------------------===//
  // Token-stream helpers
  //===--------------------------------------------------------------------===//

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Cur + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() {
    const Token &T = Tokens[Cur];
    if (Cur + 1 < Tokens.size())
      ++Cur;
    return T;
  }
  bool check(TokenKind K) const { return peek().is(K); }
  bool accept(TokenKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokenKind K, const char *Context);
  void errorHere(const std::string &Message);
  /// Skips tokens until a likely statement boundary (error recovery).
  void synchronize();
  /// ASI: consumes `;` or accepts a virtual semicolon before `}`/EOF/newline.
  void consumeSemicolon();
  /// True when an identifier-like token (incl. contextual keywords) is next.
  bool checkIdentifierLike() const;
  /// Takes an identifier-like token's spelling.
  std::string expectIdentifierLike(const char *Context);

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  ast::StmtPtr parseStatement();
  ast::StmtPtr parseBlock();
  ast::StmtPtr parseVariableDeclaration();
  ast::StmtPtr parseIf();
  ast::StmtPtr parseWhile();
  ast::StmtPtr parseDoWhile();
  ast::StmtPtr parseFor();
  ast::StmtPtr parseReturn();
  ast::StmtPtr parseFunctionDeclaration();
  ast::StmtPtr parseClassDeclaration();
  ast::StmtPtr parseThrow();
  ast::StmtPtr parseTry();
  ast::StmtPtr parseSwitch();
  ast::StmtPtr parseExpressionStatement();

  //===--------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===//

  ast::ExprPtr parseExpression();           // Comma operator level.
  ast::ExprPtr parseAssignment();           // =, +=, ... and arrows.
  ast::ExprPtr parseConditional();          // ?:
  ast::ExprPtr parseBinary(int MinPrec);    // All binary/logical operators.
  ast::ExprPtr parseUnary();
  ast::ExprPtr parsePostfix();
  ast::ExprPtr parseCallOrMember(bool AllowCall);
  ast::ExprPtr parseNew();
  ast::ExprPtr parsePrimary();
  ast::ExprPtr parseObjectLiteral();
  ast::ExprPtr parseArrayLiteral();
  ast::ExprPtr parseFunctionExpr(bool RequireName);
  ast::ExprPtr parseClassExpr();
  ast::ExprPtr parseTemplate();
  std::vector<ast::ExprPtr> parseArguments();
  std::vector<ast::Param> parseParams();

  /// Parses a binding target in a declaration/parameter position: either a
  /// plain name (into \p Name) or a destructuring pattern (into \p Pattern).
  void parseBindingTarget(std::string &Name, ast::ExprPtr &Pattern);

  /// True if the token stream starting at `(` can only be an arrow-function
  /// parameter list (decided by scanning to the matching `)` and checking
  /// for `=>`).
  bool isArrowAhead() const;
};

/// Convenience: parses \p Source, returning null and filling \p Diags on
/// error-free parses too (diagnostics may contain warnings). With a
/// \p ScanDeadline, parsing stops cooperatively on expiry and the partial
/// program is returned.
std::unique_ptr<ast::Program> parseJS(const std::string &Source,
                                      DiagnosticEngine &Diags,
                                      Deadline *ScanDeadline = nullptr,
                                      obs::TraceRecorder *Trace = nullptr);

} // namespace gjs

#endif // GJS_FRONTEND_PARSER_H
