//===- frontend/Lexer.cpp - JavaScript lexer ------------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "obs/Counters.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace gjs;

const char *gjs::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile: return "end of file";
  case TokenKind::Invalid: return "invalid token";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::PrivateName: return "private name";
  case TokenKind::NumericLiteral: return "number";
  case TokenKind::StringLiteral: return "string";
  case TokenKind::RegExpLiteral: return "regexp";
  case TokenKind::TemplateString: return "template string";
  case TokenKind::TemplateHead: return "template head";
  case TokenKind::TemplateMiddle: return "template middle";
  case TokenKind::TemplateTail: return "template tail";
  case TokenKind::KwBreak: return "'break'";
  case TokenKind::KwCase: return "'case'";
  case TokenKind::KwCatch: return "'catch'";
  case TokenKind::KwClass: return "'class'";
  case TokenKind::KwConst: return "'const'";
  case TokenKind::KwContinue: return "'continue'";
  case TokenKind::KwDebugger: return "'debugger'";
  case TokenKind::KwDefault: return "'default'";
  case TokenKind::KwDelete: return "'delete'";
  case TokenKind::KwDo: return "'do'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwExport: return "'export'";
  case TokenKind::KwExtends: return "'extends'";
  case TokenKind::KwFalse: return "'false'";
  case TokenKind::KwFinally: return "'finally'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwFunction: return "'function'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwImport: return "'import'";
  case TokenKind::KwIn: return "'in'";
  case TokenKind::KwInstanceof: return "'instanceof'";
  case TokenKind::KwLet: return "'let'";
  case TokenKind::KwNew: return "'new'";
  case TokenKind::KwNull: return "'null'";
  case TokenKind::KwOf: return "'of'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwStatic: return "'static'";
  case TokenKind::KwSuper: return "'super'";
  case TokenKind::KwSwitch: return "'switch'";
  case TokenKind::KwThis: return "'this'";
  case TokenKind::KwThrow: return "'throw'";
  case TokenKind::KwTrue: return "'true'";
  case TokenKind::KwTry: return "'try'";
  case TokenKind::KwTypeof: return "'typeof'";
  case TokenKind::KwVar: return "'var'";
  case TokenKind::KwVoid: return "'void'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwWith: return "'with'";
  case TokenKind::KwYield: return "'yield'";
  case TokenKind::KwAsync: return "'async'";
  case TokenKind::KwAwait: return "'await'";
  case TokenKind::KwGet: return "'get'";
  case TokenKind::KwSet: return "'set'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Semicolon: return "';'";
  case TokenKind::Comma: return "','";
  case TokenKind::Dot: return "'.'";
  case TokenKind::DotDotDot: return "'...'";
  case TokenKind::Arrow: return "'=>'";
  case TokenKind::Question: return "'?'";
  case TokenKind::QuestionDot: return "'?.'";
  case TokenKind::QuestionQuestion: return "'?\?'";
  case TokenKind::Colon: return "':'";
  case TokenKind::Assign: return "'='";
  case TokenKind::PlusAssign: return "'+='";
  case TokenKind::MinusAssign: return "'-='";
  case TokenKind::StarAssign: return "'*='";
  case TokenKind::SlashAssign: return "'/='";
  case TokenKind::PercentAssign: return "'%='";
  case TokenKind::StarStarAssign: return "'**='";
  case TokenKind::LShiftAssign: return "'<<='";
  case TokenKind::RShiftAssign: return "'>>='";
  case TokenKind::URShiftAssign: return "'>>>='";
  case TokenKind::AmpAssign: return "'&='";
  case TokenKind::PipeAssign: return "'|='";
  case TokenKind::CaretAssign: return "'^='";
  case TokenKind::AmpAmpAssign: return "'&&='";
  case TokenKind::PipePipeAssign: return "'||='";
  case TokenKind::QuestionQuestionAssign: return "'?\?='";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::StarStar: return "'**'";
  case TokenKind::PlusPlus: return "'++'";
  case TokenKind::MinusMinus: return "'--'";
  case TokenKind::Amp: return "'&'";
  case TokenKind::Pipe: return "'|'";
  case TokenKind::Caret: return "'^'";
  case TokenKind::Tilde: return "'~'";
  case TokenKind::LShift: return "'<<'";
  case TokenKind::RShift: return "'>>'";
  case TokenKind::URShift: return "'>>>'";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::Bang: return "'!'";
  case TokenKind::Equal: return "'=='";
  case TokenKind::NotEqual: return "'!='";
  case TokenKind::StrictEqual: return "'==='";
  case TokenKind::StrictNotEqual: return "'!=='";
  case TokenKind::Less: return "'<'";
  case TokenKind::Greater: return "'>'";
  case TokenKind::LessEqual: return "'<='";
  case TokenKind::GreaterEqual: return "'>='";
  }
  return "token";
}

static const std::unordered_map<std::string, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string, TokenKind> Table = {
      {"break", TokenKind::KwBreak},       {"case", TokenKind::KwCase},
      {"catch", TokenKind::KwCatch},       {"class", TokenKind::KwClass},
      {"const", TokenKind::KwConst},       {"continue", TokenKind::KwContinue},
      {"debugger", TokenKind::KwDebugger}, {"default", TokenKind::KwDefault},
      {"delete", TokenKind::KwDelete},     {"do", TokenKind::KwDo},
      {"else", TokenKind::KwElse},         {"export", TokenKind::KwExport},
      {"extends", TokenKind::KwExtends},   {"false", TokenKind::KwFalse},
      {"finally", TokenKind::KwFinally},   {"for", TokenKind::KwFor},
      {"function", TokenKind::KwFunction}, {"if", TokenKind::KwIf},
      {"import", TokenKind::KwImport},     {"in", TokenKind::KwIn},
      {"instanceof", TokenKind::KwInstanceof},
      {"let", TokenKind::KwLet},           {"new", TokenKind::KwNew},
      {"null", TokenKind::KwNull},         {"of", TokenKind::KwOf},
      {"return", TokenKind::KwReturn},     {"static", TokenKind::KwStatic},
      {"super", TokenKind::KwSuper},       {"switch", TokenKind::KwSwitch},
      {"this", TokenKind::KwThis},         {"throw", TokenKind::KwThrow},
      {"true", TokenKind::KwTrue},         {"try", TokenKind::KwTry},
      {"typeof", TokenKind::KwTypeof},     {"var", TokenKind::KwVar},
      {"void", TokenKind::KwVoid},         {"while", TokenKind::KwWhile},
      {"with", TokenKind::KwWith},         {"yield", TokenKind::KwYield},
      {"async", TokenKind::KwAsync},       {"await", TokenKind::KwAwait},
      {"get", TokenKind::KwGet},           {"set", TokenKind::KwSet},
  };
  return Table;
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::advance() {
  assert(Pos < Source.size() && "advance past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == '\n') {
      SawNewline = true;
      advance();
    } else if (C == ' ' || C == '\t' || C == '\r' || C == '\v' || C == '\f') {
      advance();
    } else if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
    } else if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (Pos < Source.size() && !(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\n')
          SawNewline = true;
        advance();
      }
      if (Pos < Source.size()) {
        advance();
        advance();
      }
    } else if (C == '#' && peek(1) == '!' && Pos == 0) {
      // Shebang line at the start of a script file.
      while (Pos < Source.size() && peek() != '\n')
        advance();
    } else {
      break;
    }
  }
}

Token Lexer::make(TokenKind Kind, SourceLocation Loc) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

bool Lexer::regExpAllowed() const {
  switch (PrevKind) {
  case TokenKind::Identifier:
  case TokenKind::NumericLiteral:
  case TokenKind::StringLiteral:
  case TokenKind::RegExpLiteral:
  case TokenKind::TemplateString:
  case TokenKind::TemplateTail:
  case TokenKind::RParen:
  case TokenKind::RBracket:
  case TokenKind::RBrace:
  case TokenKind::PlusPlus:
  case TokenKind::MinusMinus:
  case TokenKind::KwThis:
  case TokenKind::KwTrue:
  case TokenKind::KwFalse:
  case TokenKind::KwNull:
  case TokenKind::KwSuper:
    return false;
  default:
    return true;
  }
}

Token Lexer::next() {
  skipTrivia();
  SourceLocation Loc = here();
  if (Pos >= Source.size())
    return finish(make(TokenKind::EndOfFile, Loc));

  char C = peek();
  if (C == '{' && !TemplateBraceDepth.empty()) {
    ++TemplateBraceDepth.back();
    advance();
    return finish(make(TokenKind::LBrace, Loc));
  }
  if (C == '}' && !TemplateBraceDepth.empty()) {
    if (TemplateBraceDepth.back() == 0) {
      Token T = lexTemplate(Loc, /*FromBrace=*/true);
      if (T.Kind == TokenKind::TemplateTail ||
          T.Kind == TokenKind::TemplateString)
        TemplateBraceDepth.pop_back();
      return finish(T);
    }
    --TemplateBraceDepth.back();
    advance();
    return finish(make(TokenKind::RBrace, Loc));
  }
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$')
    return finish(lexIdentifierOrKeyword(Loc));
  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
    return finish(lexNumber(Loc));
  if (C == '"' || C == '\'') {
    advance();
    return finish(lexString(Loc, C));
  }
  if (C == '`') {
    advance();
    Token T = lexTemplate(Loc, /*FromBrace=*/false);
    if (T.Kind == TokenKind::TemplateHead)
      TemplateBraceDepth.push_back(0);
    return finish(T);
  }
  if (C == '/' && regExpAllowed())
    return finish(lexRegExp(Loc));
  if (C == '#') {
    advance();
    Token T = lexIdentifierOrKeyword(Loc);
    T.Kind = TokenKind::PrivateName;
    return finish(T);
  }
  return finish(lexPunctuation(Loc));
}

Token Lexer::lexIdentifierOrKeyword(SourceLocation Loc) {
  std::string Name;
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '$')
      Name += advance();
    else
      break;
  }
  auto It = keywordTable().find(Name);
  Token T = make(It != keywordTable().end() ? It->second
                                            : TokenKind::Identifier,
                 Loc);
  T.Text = std::move(Name);
  return T;
}

Token Lexer::lexNumber(SourceLocation Loc) {
  std::string Digits;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())) || peek() == '_')
      if (char C = advance(); C != '_')
        Digits += C;
    Token T = make(TokenKind::NumericLiteral, Loc);
    T.NumberValue =
        static_cast<double>(std::strtoull(Digits.c_str(), nullptr, 16));
    T.Text = "0x" + Digits;
    return T;
  }
  if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B' || peek(1) == 'o' ||
                        peek(1) == 'O')) {
    advance();
    char Base = advance();
    int Radix = (Base == 'b' || Base == 'B') ? 2 : 8;
    while (std::isalnum(static_cast<unsigned char>(peek())))
      Digits += advance();
    Token T = make(TokenKind::NumericLiteral, Loc);
    T.NumberValue =
        static_cast<double>(std::strtoull(Digits.c_str(), nullptr, Radix));
    T.Text = Digits;
    return T;
  }

  auto TakeDigits = [&] {
    while (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '_')
      if (char C = advance(); C != '_')
        Digits += C;
  };
  TakeDigits();
  if (peek() == '.') {
    Digits += advance();
    TakeDigits();
  }
  if (peek() == 'e' || peek() == 'E') {
    Digits += advance();
    if (peek() == '+' || peek() == '-')
      Digits += advance();
    TakeDigits();
  }
  Token T = make(TokenKind::NumericLiteral, Loc);
  T.NumberValue = std::strtod(Digits.c_str(), nullptr);
  T.Text = Digits;
  return T;
}

Token Lexer::lexString(SourceLocation Loc, char Quote) {
  std::string Value;
  while (Pos < Source.size() && peek() != Quote) {
    char C = advance();
    if (C == '\n') {
      Diags.error(Loc, "unterminated string literal");
      break;
    }
    if (C != '\\') {
      Value += C;
      continue;
    }
    if (Pos >= Source.size())
      break;
    char E = advance();
    switch (E) {
    case 'n': Value += '\n'; break;
    case 't': Value += '\t'; break;
    case 'r': Value += '\r'; break;
    case 'b': Value += '\b'; break;
    case 'f': Value += '\f'; break;
    case 'v': Value += '\v'; break;
    case '0': Value += '\0'; break;
    case '\n': break; // Line continuation.
    case 'x': {
      char Hex[3] = {0, 0, 0};
      for (int I = 0; I < 2 && Pos < Source.size(); ++I)
        Hex[I] = advance();
      Value += static_cast<char>(std::strtoul(Hex, nullptr, 16));
      break;
    }
    case 'u': {
      // \uXXXX or \u{...}; we decode to a single byte when the code point
      // fits, otherwise keep a '?' placeholder — exactness of non-ASCII
      // string contents does not affect the analysis.
      unsigned Code = 0;
      if (peek() == '{') {
        advance();
        while (Pos < Source.size() && peek() != '}')
          Code = Code * 16 + (std::isdigit(static_cast<unsigned char>(peek()))
                                  ? advance() - '0'
                                  : (advance() | 0x20) - 'a' + 10);
        if (Pos < Source.size())
          advance();
      } else {
        for (int I = 0; I < 4 && Pos < Source.size(); ++I) {
          char H = advance();
          Code = Code * 16 +
                 (std::isdigit(static_cast<unsigned char>(H))
                      ? static_cast<unsigned>(H - '0')
                      : static_cast<unsigned>((H | 0x20) - 'a' + 10));
        }
      }
      Value += Code < 128 ? static_cast<char>(Code) : '?';
      break;
    }
    default:
      Value += E;
    }
  }
  if (Pos < Source.size())
    advance(); // Closing quote.
  else
    Diags.error(Loc, "unterminated string literal");
  Token T = make(TokenKind::StringLiteral, Loc);
  T.Text = std::move(Value);
  return T;
}

Token Lexer::lexTemplate(SourceLocation Loc, bool FromBrace) {
  if (FromBrace) {
    assert(peek() == '}' && "template continuation must start at '}'");
    advance();
  }
  std::string Value;
  while (Pos < Source.size()) {
    char C = peek();
    if (C == '`') {
      advance();
      Token T = make(FromBrace ? TokenKind::TemplateTail
                               : TokenKind::TemplateString,
                     Loc);
      T.Text = std::move(Value);
      return T;
    }
    if (C == '$' && peek(1) == '{') {
      advance();
      advance();
      Token T = make(FromBrace ? TokenKind::TemplateMiddle
                               : TokenKind::TemplateHead,
                     Loc);
      T.Text = std::move(Value);
      return T;
    }
    if (C == '\\') {
      advance();
      if (Pos < Source.size()) {
        char E = advance();
        switch (E) {
        case 'n': Value += '\n'; break;
        case 't': Value += '\t'; break;
        case '`': Value += '`'; break;
        case '$': Value += '$'; break;
        case '\\': Value += '\\'; break;
        default: Value += E;
        }
      }
      continue;
    }
    if (C == '\n')
      SawNewline = true;
    Value += advance();
  }
  Diags.error(Loc, "unterminated template literal");
  Token T = make(TokenKind::TemplateString, Loc);
  T.Text = std::move(Value);
  return T;
}

Token Lexer::lexRegExp(SourceLocation Loc) {
  assert(peek() == '/' && "regexp must start at '/'");
  std::string Raw;
  Raw += advance();
  bool InClass = false;
  while (Pos < Source.size()) {
    char C = peek();
    if (C == '\n') {
      Diags.error(Loc, "unterminated regular expression");
      break;
    }
    if (C == '\\') {
      Raw += advance();
      if (Pos < Source.size())
        Raw += advance();
      continue;
    }
    if (C == '[')
      InClass = true;
    else if (C == ']')
      InClass = false;
    else if (C == '/' && !InClass) {
      Raw += advance();
      while (std::isalpha(static_cast<unsigned char>(peek())))
        Raw += advance(); // Flags.
      Token T = make(TokenKind::RegExpLiteral, Loc);
      T.Text = std::move(Raw);
      return T;
    }
    Raw += advance();
  }
  Token T = make(TokenKind::RegExpLiteral, Loc);
  T.Text = std::move(Raw);
  return T;
}

Token Lexer::lexPunctuation(SourceLocation Loc) {
  char C = advance();
  switch (C) {
  case '{': return make(TokenKind::LBrace, Loc);
  case '}': return make(TokenKind::RBrace, Loc);
  case '(': return make(TokenKind::LParen, Loc);
  case ')': return make(TokenKind::RParen, Loc);
  case '[': return make(TokenKind::LBracket, Loc);
  case ']': return make(TokenKind::RBracket, Loc);
  case ';': return make(TokenKind::Semicolon, Loc);
  case ',': return make(TokenKind::Comma, Loc);
  case ':': return make(TokenKind::Colon, Loc);
  case '~': return make(TokenKind::Tilde, Loc);
  case '.':
    if (peek() == '.' && peek(1) == '.') {
      advance();
      advance();
      return make(TokenKind::DotDotDot, Loc);
    }
    return make(TokenKind::Dot, Loc);
  case '?':
    if (match('.'))
      return make(TokenKind::QuestionDot, Loc);
    if (match('?'))
      return match('=') ? make(TokenKind::QuestionQuestionAssign, Loc)
                        : make(TokenKind::QuestionQuestion, Loc);
    return make(TokenKind::Question, Loc);
  case '+':
    if (match('+'))
      return make(TokenKind::PlusPlus, Loc);
    return match('=') ? make(TokenKind::PlusAssign, Loc)
                      : make(TokenKind::Plus, Loc);
  case '-':
    if (match('-'))
      return make(TokenKind::MinusMinus, Loc);
    return match('=') ? make(TokenKind::MinusAssign, Loc)
                      : make(TokenKind::Minus, Loc);
  case '*':
    if (match('*'))
      return match('=') ? make(TokenKind::StarStarAssign, Loc)
                        : make(TokenKind::StarStar, Loc);
    return match('=') ? make(TokenKind::StarAssign, Loc)
                      : make(TokenKind::Star, Loc);
  case '/':
    return match('=') ? make(TokenKind::SlashAssign, Loc)
                      : make(TokenKind::Slash, Loc);
  case '%':
    return match('=') ? make(TokenKind::PercentAssign, Loc)
                      : make(TokenKind::Percent, Loc);
  case '&':
    if (match('&'))
      return match('=') ? make(TokenKind::AmpAmpAssign, Loc)
                        : make(TokenKind::AmpAmp, Loc);
    return match('=') ? make(TokenKind::AmpAssign, Loc)
                      : make(TokenKind::Amp, Loc);
  case '|':
    if (match('|'))
      return match('=') ? make(TokenKind::PipePipeAssign, Loc)
                        : make(TokenKind::PipePipe, Loc);
    return match('=') ? make(TokenKind::PipeAssign, Loc)
                      : make(TokenKind::Pipe, Loc);
  case '^':
    return match('=') ? make(TokenKind::CaretAssign, Loc)
                      : make(TokenKind::Caret, Loc);
  case '!':
    if (match('='))
      return match('=') ? make(TokenKind::StrictNotEqual, Loc)
                        : make(TokenKind::NotEqual, Loc);
    return make(TokenKind::Bang, Loc);
  case '=':
    if (match('='))
      return match('=') ? make(TokenKind::StrictEqual, Loc)
                        : make(TokenKind::Equal, Loc);
    return match('>') ? make(TokenKind::Arrow, Loc)
                      : make(TokenKind::Assign, Loc);
  case '<':
    if (match('<'))
      return match('=') ? make(TokenKind::LShiftAssign, Loc)
                        : make(TokenKind::LShift, Loc);
    return match('=') ? make(TokenKind::LessEqual, Loc)
                      : make(TokenKind::Less, Loc);
  case '>':
    if (match('>')) {
      if (match('>'))
        return match('=') ? make(TokenKind::URShiftAssign, Loc)
                          : make(TokenKind::URShift, Loc);
      return match('=') ? make(TokenKind::RShiftAssign, Loc)
                        : make(TokenKind::RShift, Loc);
    }
    return match('=') ? make(TokenKind::GreaterEqual, Loc)
                      : make(TokenKind::Greater, Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return make(TokenKind::Invalid, Loc);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().Kind == TokenKind::EndOfFile) {
      obs::counters::LexTokens.add(Tokens.size());
      return Tokens;
    }
  }
}
