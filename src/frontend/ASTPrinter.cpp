//===- frontend/ASTPrinter.cpp - AST dumping ------------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/AST.h"

#include <sstream>

using namespace gjs;
using namespace gjs::ast;

namespace {

/// Renders the AST as an indented tree; used by parser tests and debugging.
class Printer {
public:
  std::string result() { return OS.str(); }

  void stmt(const Stmt *S, int Depth) {
    if (!S) {
      line(Depth, "(null-stmt)");
      return;
    }
    switch (S->kind()) {
    case Stmt::Kind::Program: {
      line(Depth, "Program");
      for (const StmtPtr &Child : cast<Program>(S)->Body)
        stmt(Child.get(), Depth + 1);
      break;
    }
    case Stmt::Kind::Block: {
      line(Depth, "Block");
      for (const StmtPtr &Child : cast<BlockStatement>(S)->Body)
        stmt(Child.get(), Depth + 1);
      break;
    }
    case Stmt::Kind::VarDecl: {
      const auto *V = cast<VariableDeclaration>(S);
      const char *KindName = V->DeclKind == VarDeclKind::Var   ? "var"
                             : V->DeclKind == VarDeclKind::Let ? "let"
                                                               : "const";
      line(Depth, std::string("VarDecl ") + KindName);
      for (const VarDeclarator &D : V->Declarators) {
        line(Depth + 1, "Declarator " + (D.Name.empty() ? "<pattern>"
                                                        : D.Name));
        if (D.Pattern)
          expr(D.Pattern.get(), Depth + 2);
        if (D.Init)
          expr(D.Init.get(), Depth + 2);
      }
      break;
    }
    case Stmt::Kind::Empty:
      line(Depth, "Empty");
      break;
    case Stmt::Kind::ExprStmt:
      line(Depth, "ExprStmt");
      expr(cast<ExpressionStatement>(S)->Expression.get(), Depth + 1);
      break;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStatement>(S);
      line(Depth, "If");
      expr(I->Cond.get(), Depth + 1);
      stmt(I->Then.get(), Depth + 1);
      if (I->Else)
        stmt(I->Else.get(), Depth + 1);
      break;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStatement>(S);
      line(Depth, "While");
      expr(W->Cond.get(), Depth + 1);
      stmt(W->Body.get(), Depth + 1);
      break;
    }
    case Stmt::Kind::DoWhile: {
      const auto *W = cast<DoWhileStatement>(S);
      line(Depth, "DoWhile");
      stmt(W->Body.get(), Depth + 1);
      expr(W->Cond.get(), Depth + 1);
      break;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStatement>(S);
      line(Depth, "For");
      if (F->Init)
        stmt(F->Init.get(), Depth + 1);
      if (F->Cond)
        expr(F->Cond.get(), Depth + 1);
      if (F->Update)
        expr(F->Update.get(), Depth + 1);
      stmt(F->Body.get(), Depth + 1);
      break;
    }
    case Stmt::Kind::ForIn:
    case Stmt::Kind::ForOf: {
      const auto *F = cast<ForInOfStatement>(S);
      line(Depth, std::string(S->kind() == Stmt::Kind::ForIn ? "ForIn "
                                                             : "ForOf ") +
                      (F->Variable.empty() ? "<pattern>" : F->Variable));
      expr(F->Object.get(), Depth + 1);
      stmt(F->Body.get(), Depth + 1);
      break;
    }
    case Stmt::Kind::Return: {
      line(Depth, "Return");
      if (const ExprPtr &A = cast<ReturnStatement>(S)->Argument)
        expr(A.get(), Depth + 1);
      break;
    }
    case Stmt::Kind::Break:
      line(Depth, "Break");
      break;
    case Stmt::Kind::Continue:
      line(Depth, "Continue");
      break;
    case Stmt::Kind::FunctionDecl:
      line(Depth, "FunctionDecl");
      expr(cast<FunctionDeclaration>(S)->Function.get(), Depth + 1);
      break;
    case Stmt::Kind::ClassDecl:
      line(Depth, "ClassDecl");
      expr(cast<ClassDeclaration>(S)->Class.get(), Depth + 1);
      break;
    case Stmt::Kind::Throw:
      line(Depth, "Throw");
      expr(cast<ThrowStatement>(S)->Argument.get(), Depth + 1);
      break;
    case Stmt::Kind::Try: {
      const auto *T = cast<TryStatement>(S);
      line(Depth, "Try");
      stmt(T->Block.get(), Depth + 1);
      if (T->Handler) {
        line(Depth + 1, "Catch " + T->CatchParam);
        stmt(T->Handler.get(), Depth + 2);
      }
      if (T->Finalizer) {
        line(Depth + 1, "Finally");
        stmt(T->Finalizer.get(), Depth + 2);
      }
      break;
    }
    case Stmt::Kind::Switch: {
      const auto *W = cast<SwitchStatement>(S);
      line(Depth, "Switch");
      expr(W->Discriminant.get(), Depth + 1);
      for (const SwitchCase &C : W->Cases) {
        line(Depth + 1, C.Test ? "Case" : "Default");
        if (C.Test)
          expr(C.Test.get(), Depth + 2);
        for (const StmtPtr &B : C.Body)
          stmt(B.get(), Depth + 2);
      }
      break;
    }
    case Stmt::Kind::Labeled: {
      const auto *L = cast<LabeledStatement>(S);
      line(Depth, "Labeled " + L->Label);
      stmt(L->Body.get(), Depth + 1);
      break;
    }
    case Stmt::Kind::Debugger:
      line(Depth, "Debugger");
      break;
    }
  }

  void expr(const Expr *E, int Depth) {
    if (!E) {
      line(Depth, "(null-expr)");
      return;
    }
    switch (E->kind()) {
    case Expr::Kind::Number:
      line(Depth, "Number " + std::to_string(cast<NumberLiteral>(E)->Value));
      break;
    case Expr::Kind::String:
      line(Depth, "String \"" + cast<StringLiteral>(E)->Value + "\"");
      break;
    case Expr::Kind::Boolean:
      line(Depth, cast<BooleanLiteral>(E)->Value ? "Boolean true"
                                                 : "Boolean false");
      break;
    case Expr::Kind::Null:
      line(Depth, "Null");
      break;
    case Expr::Kind::Undefined:
      line(Depth, "Undefined");
      break;
    case Expr::Kind::RegExp:
      line(Depth, "RegExp " + cast<RegExpLiteral>(E)->Raw);
      break;
    case Expr::Kind::Identifier:
      line(Depth, "Identifier " + cast<Identifier>(E)->Name);
      break;
    case Expr::Kind::This:
      line(Depth, "This");
      break;
    case Expr::Kind::Array: {
      line(Depth, "Array");
      for (const ExprPtr &El : cast<ArrayLiteral>(E)->Elements)
        expr(El.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Object: {
      line(Depth, "Object");
      for (const ObjectProperty &P : cast<ObjectLiteral>(E)->Properties) {
        line(Depth + 1,
             "Property " + (P.Computed ? "<computed>" : P.Name));
        if (P.KeyExpr)
          expr(P.KeyExpr.get(), Depth + 2);
        if (P.Value)
          expr(P.Value.get(), Depth + 2);
      }
      break;
    }
    case Expr::Kind::Function: {
      const auto *F = cast<FunctionExpr>(E);
      std::string Header = "Function " + (F->Name.empty() ? "<anon>"
                                                          : F->Name) + " (";
      for (size_t I = 0; I < F->Params.size(); ++I) {
        if (I)
          Header += ", ";
        Header += F->Params[I].Name.empty() ? "<pattern>" : F->Params[I].Name;
      }
      Header += ")";
      line(Depth, Header);
      stmt(F->Body.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Arrow: {
      const auto *A = cast<ArrowFunctionExpr>(E);
      std::string Header = "Arrow (";
      for (size_t I = 0; I < A->Params.size(); ++I) {
        if (I)
          Header += ", ";
        Header += A->Params[I].Name.empty() ? "<pattern>" : A->Params[I].Name;
      }
      Header += ")";
      line(Depth, Header);
      if (A->Body)
        stmt(A->Body.get(), Depth + 1);
      if (A->ExprBody)
        expr(A->ExprBody.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Class: {
      const auto *C = cast<ClassExpr>(E);
      line(Depth, "Class " + (C->Name.empty() ? "<anon>" : C->Name));
      for (const ClassMember &M : C->Members) {
        line(Depth + 1, std::string("Member ") + M.Name +
                            (M.IsStatic ? " static" : ""));
        if (M.Value)
          expr(M.Value.get(), Depth + 2);
      }
      break;
    }
    case Expr::Kind::Unary: {
      static const char *Names[] = {"-", "+", "!", "~", "typeof", "void",
                                    "delete"};
      line(Depth, std::string("Unary ") +
                      Names[static_cast<int>(cast<UnaryExpr>(E)->Op)]);
      expr(cast<UnaryExpr>(E)->Operand.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Update: {
      const auto *U = cast<UpdateExpr>(E);
      line(Depth, std::string("Update ") + (U->IsIncrement ? "++" : "--") +
                      (U->IsPrefix ? " prefix" : " postfix"));
      expr(U->Operand.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Binary: {
      static const char *Names[] = {
          "+",  "-",  "*",   "/",  "%",  "**", "==", "!=", "===", "!==", "<",
          ">",  "<=", ">=",  "<<", ">>", ">>>", "&",  "|",  "^",  "in",
          "instanceof"};
      const auto *B = cast<BinaryExpr>(E);
      line(Depth, std::string("Binary ") + Names[static_cast<int>(B->Op)]);
      expr(B->LHS.get(), Depth + 1);
      expr(B->RHS.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Logical: {
      static const char *Names[] = {"&&", "||", "??"};
      const auto *L = cast<LogicalExpr>(E);
      line(Depth, std::string("Logical ") + Names[static_cast<int>(L->Op)]);
      expr(L->LHS.get(), Depth + 1);
      expr(L->RHS.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Assignment: {
      const auto *A = cast<AssignmentExpr>(E);
      line(Depth, A->IsCompound ? "Assignment compound"
                  : A->IsLogical ? "Assignment logical"
                                 : "Assignment");
      expr(A->Target.get(), Depth + 1);
      expr(A->Value.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      line(Depth, "Conditional");
      expr(C->Cond.get(), Depth + 1);
      expr(C->Then.get(), Depth + 1);
      expr(C->Else.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      line(Depth, "Call");
      expr(C->Callee.get(), Depth + 1);
      for (const ExprPtr &A : C->Arguments)
        expr(A.get(), Depth + 1);
      break;
    }
    case Expr::Kind::New: {
      const auto *N = cast<NewExpr>(E);
      line(Depth, "New");
      expr(N->Callee.get(), Depth + 1);
      for (const ExprPtr &A : N->Arguments)
        expr(A.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Member: {
      const auto *M = cast<MemberExpr>(E);
      if (M->Computed) {
        line(Depth, "Member <computed>");
        expr(M->Object.get(), Depth + 1);
        expr(M->Index.get(), Depth + 1);
      } else {
        line(Depth, "Member ." + M->Name);
        expr(M->Object.get(), Depth + 1);
      }
      break;
    }
    case Expr::Kind::Sequence: {
      line(Depth, "Sequence");
      for (const ExprPtr &P : cast<SequenceExpr>(E)->Expressions)
        expr(P.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Template: {
      const auto *T = cast<TemplateLiteral>(E);
      line(Depth, "Template");
      for (size_t I = 0; I < T->Quasis.size(); ++I) {
        line(Depth + 1, "Quasi \"" + T->Quasis[I] + "\"");
        if (I < T->Substitutions.size())
          expr(T->Substitutions[I].get(), Depth + 1);
      }
      break;
    }
    case Expr::Kind::TaggedTemplate: {
      const auto *T = cast<TaggedTemplateExpr>(E);
      line(Depth, "TaggedTemplate");
      expr(T->Tag.get(), Depth + 1);
      expr(T->Quasi.get(), Depth + 1);
      break;
    }
    case Expr::Kind::Spread:
      line(Depth, "Spread");
      expr(cast<SpreadElement>(E)->Argument.get(), Depth + 1);
      break;
    case Expr::Kind::Yield:
      line(Depth, "Yield");
      if (const ExprPtr &A = cast<YieldExpr>(E)->Argument)
        expr(A.get(), Depth + 1);
      break;
    case Expr::Kind::Await:
      line(Depth, "Await");
      expr(cast<AwaitExpr>(E)->Argument.get(), Depth + 1);
      break;
    }
  }

  size_t Count = 0;

private:
  std::ostringstream OS;

  void line(int Depth, const std::string &Text) {
    ++Count;
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
    OS << Text << '\n';
  }
};

} // namespace

std::string ast::dump(const Stmt &S) {
  Printer P;
  P.stmt(&S, 0);
  return P.result();
}

std::string ast::dump(const Expr &E) {
  Printer P;
  P.expr(&E, 0);
  return P.result();
}

size_t ast::countNodes(const Stmt &S) {
  Printer P;
  P.stmt(&S, 0);
  return P.Count;
}
