//===- frontend/AST.h - JavaScript abstract syntax tree ---------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JavaScript AST produced by the parser. The hierarchy uses LLVM-style
/// kind discriminators (no C++ RTTI). Nodes own their children via
/// std::unique_ptr; a Program owns the whole tree.
///
/// The node set mirrors the ESTree shapes Esprima produces for the language
/// subset that Graph.js's normalizer consumes (§4 "parsing and transpiling
/// JavaScript programs to the core JavaScript").
///
//===----------------------------------------------------------------------===//

#ifndef GJS_FRONTEND_AST_H
#define GJS_FRONTEND_AST_H

#include "support/SourceLocation.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace gjs {
namespace ast {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Kind {
    Number,
    String,
    Boolean,
    Null,
    Undefined,
    RegExp,
    Identifier,
    This,
    Array,
    Object,
    Function,
    Arrow,
    Class,
    Unary,
    Update,
    Binary,
    Logical,
    Assignment,
    Conditional,
    Call,
    New,
    Member,
    Sequence,
    Template,
    TaggedTemplate,
    Spread,
    Yield,
    Await,
  };

  virtual ~Expr() = default;

  Kind kind() const { return TheKind; }
  SourceLocation loc() const { return Loc; }

protected:
  Expr(Kind K, SourceLocation Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLocation Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

/// LLVM-style checked downcasts for AST expressions.
template <typename T> bool isa(const Expr *E) { return T::classof(E); }
template <typename T> T *cast(Expr *E) {
  assert(E && T::classof(E) && "invalid expr cast");
  return static_cast<T *>(E);
}
template <typename T> const T *cast(const Expr *E) {
  assert(E && T::classof(E) && "invalid expr cast");
  return static_cast<const T *>(E);
}
template <typename T> T *dyn_cast(Expr *E) {
  return E && T::classof(E) ? static_cast<T *>(E) : nullptr;
}
template <typename T> const T *dyn_cast(const Expr *E) {
  return E && T::classof(E) ? static_cast<const T *>(E) : nullptr;
}

class NumberLiteral : public Expr {
public:
  double Value;
  NumberLiteral(double Value, SourceLocation Loc)
      : Expr(Kind::Number, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Number; }
};

class StringLiteral : public Expr {
public:
  std::string Value;
  StringLiteral(std::string Value, SourceLocation Loc)
      : Expr(Kind::String, Loc), Value(std::move(Value)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::String; }
};

class BooleanLiteral : public Expr {
public:
  bool Value;
  BooleanLiteral(bool Value, SourceLocation Loc)
      : Expr(Kind::Boolean, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Boolean; }
};

class NullLiteral : public Expr {
public:
  explicit NullLiteral(SourceLocation Loc) : Expr(Kind::Null, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Null; }
};

class UndefinedLiteral : public Expr {
public:
  explicit UndefinedLiteral(SourceLocation Loc) : Expr(Kind::Undefined, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Undefined; }
};

class RegExpLiteral : public Expr {
public:
  std::string Raw;
  RegExpLiteral(std::string Raw, SourceLocation Loc)
      : Expr(Kind::RegExp, Loc), Raw(std::move(Raw)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::RegExp; }
};

class Identifier : public Expr {
public:
  std::string Name;
  Identifier(std::string Name, SourceLocation Loc)
      : Expr(Kind::Identifier, Loc), Name(std::move(Name)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Identifier; }
};

class ThisExpr : public Expr {
public:
  explicit ThisExpr(SourceLocation Loc) : Expr(Kind::This, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::This; }
};

class ArrayLiteral : public Expr {
public:
  std::vector<ExprPtr> Elements; // Null entries denote holes.
  ArrayLiteral(std::vector<ExprPtr> Elements, SourceLocation Loc)
      : Expr(Kind::Array, Loc), Elements(std::move(Elements)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Array; }
};

/// One property in an object literal: `key: value`, `[expr]: value`,
/// shorthand `name`, or method `name() {}` (the method's FunctionExpr is the
/// value).
struct ObjectProperty {
  /// Static key name; empty when Computed.
  std::string Name;
  /// Key expression for computed keys `[e]`.
  ExprPtr KeyExpr;
  ExprPtr Value;
  bool Computed = false;
  SourceLocation Loc;
};

class ObjectLiteral : public Expr {
public:
  std::vector<ObjectProperty> Properties;
  ObjectLiteral(std::vector<ObjectProperty> Properties, SourceLocation Loc)
      : Expr(Kind::Object, Loc), Properties(std::move(Properties)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Object; }
};

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// A function parameter. Destructuring parameters are represented by an
/// empty Name plus a Pattern expression (object/array literal shape).
struct Param {
  std::string Name;
  ExprPtr Default; // Optional default value.
  bool Rest = false;
  SourceLocation Loc;
};

class FunctionExpr : public Expr {
public:
  std::string Name; // Empty for anonymous functions.
  std::vector<Param> Params;
  StmtPtr Body; // A BlockStatement.
  bool IsAsync = false;
  bool IsGenerator = false;
  FunctionExpr(std::string Name, std::vector<Param> Params, StmtPtr Body,
               SourceLocation Loc)
      : Expr(Kind::Function, Loc), Name(std::move(Name)),
        Params(std::move(Params)), Body(std::move(Body)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Function; }
};

class ArrowFunctionExpr : public Expr {
public:
  std::vector<Param> Params;
  /// Either a BlockStatement body or an expression body (exactly one set).
  StmtPtr Body;
  ExprPtr ExprBody;
  bool IsAsync = false;
  ArrowFunctionExpr(std::vector<Param> Params, StmtPtr Body, ExprPtr ExprBody,
                    SourceLocation Loc)
      : Expr(Kind::Arrow, Loc), Params(std::move(Params)),
        Body(std::move(Body)), ExprBody(std::move(ExprBody)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Arrow; }
};

/// One member of a class body (we model methods only; fields are lowered to
/// constructor assignments by the parser).
struct ClassMember {
  std::string Name;
  ExprPtr Value; // A FunctionExpr.
  bool IsStatic = false;
  bool IsConstructor = false;
  SourceLocation Loc;
};

class ClassExpr : public Expr {
public:
  std::string Name;
  ExprPtr SuperClass; // May be null.
  std::vector<ClassMember> Members;
  ClassExpr(std::string Name, ExprPtr SuperClass,
            std::vector<ClassMember> Members, SourceLocation Loc)
      : Expr(Kind::Class, Loc), Name(std::move(Name)),
        SuperClass(std::move(SuperClass)), Members(std::move(Members)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Class; }
};

enum class UnaryOperator { Minus, Plus, Not, BitNot, TypeOf, Void, Delete };

class UnaryExpr : public Expr {
public:
  UnaryOperator Op;
  ExprPtr Operand;
  UnaryExpr(UnaryOperator Op, ExprPtr Operand, SourceLocation Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }
};

class UpdateExpr : public Expr {
public:
  bool IsIncrement;
  bool IsPrefix;
  ExprPtr Operand;
  UpdateExpr(bool IsIncrement, bool IsPrefix, ExprPtr Operand,
             SourceLocation Loc)
      : Expr(Kind::Update, Loc), IsIncrement(IsIncrement), IsPrefix(IsPrefix),
        Operand(std::move(Operand)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Update; }
};

enum class BinaryOperator {
  Add, Sub, Mul, Div, Mod, Pow,
  Equal, NotEqual, StrictEqual, StrictNotEqual,
  Less, Greater, LessEqual, GreaterEqual,
  LShift, RShift, URShift, BitAnd, BitOr, BitXor,
  In, InstanceOf,
};

class BinaryExpr : public Expr {
public:
  BinaryOperator Op;
  ExprPtr LHS, RHS;
  BinaryExpr(BinaryOperator Op, ExprPtr LHS, ExprPtr RHS, SourceLocation Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }
};

enum class LogicalOperator { And, Or, NullishCoalesce };

class LogicalExpr : public Expr {
public:
  LogicalOperator Op;
  ExprPtr LHS, RHS;
  LogicalExpr(LogicalOperator Op, ExprPtr LHS, ExprPtr RHS, SourceLocation Loc)
      : Expr(Kind::Logical, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Logical; }
};

/// `=` plus the compound forms; compound assignments carry the underlying
/// binary operator in CompoundOp.
class AssignmentExpr : public Expr {
public:
  ExprPtr Target; // Identifier or MemberExpr (patterns are desugared).
  ExprPtr Value;
  bool IsCompound = false;
  BinaryOperator CompoundOp = BinaryOperator::Add;
  /// Logical assignment forms (&&=, ||=, ??=) set IsLogical.
  bool IsLogical = false;
  LogicalOperator LogicalOp = LogicalOperator::And;
  AssignmentExpr(ExprPtr Target, ExprPtr Value, SourceLocation Loc)
      : Expr(Kind::Assignment, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Assignment; }
};

class ConditionalExpr : public Expr {
public:
  ExprPtr Cond, Then, Else;
  ConditionalExpr(ExprPtr Cond, ExprPtr Then, ExprPtr Else, SourceLocation Loc)
      : Expr(Kind::Conditional, Loc), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Conditional; }
};

class CallExpr : public Expr {
public:
  ExprPtr Callee;
  std::vector<ExprPtr> Arguments;
  bool Optional = false; // `f?.()`
  CallExpr(ExprPtr Callee, std::vector<ExprPtr> Arguments, SourceLocation Loc)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Arguments(std::move(Arguments)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }
};

class NewExpr : public Expr {
public:
  ExprPtr Callee;
  std::vector<ExprPtr> Arguments;
  NewExpr(ExprPtr Callee, std::vector<ExprPtr> Arguments, SourceLocation Loc)
      : Expr(Kind::New, Loc), Callee(std::move(Callee)),
        Arguments(std::move(Arguments)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::New; }
};

class MemberExpr : public Expr {
public:
  ExprPtr Object;
  /// Static property name (when !Computed) or index expression.
  std::string Name;
  ExprPtr Index;
  bool Computed;
  bool Optional = false; // `o?.p`
  MemberExpr(ExprPtr Object, std::string Name, SourceLocation Loc)
      : Expr(Kind::Member, Loc), Object(std::move(Object)),
        Name(std::move(Name)), Computed(false) {}
  MemberExpr(ExprPtr Object, ExprPtr Index, SourceLocation Loc)
      : Expr(Kind::Member, Loc), Object(std::move(Object)),
        Index(std::move(Index)), Computed(true) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Member; }
};

class SequenceExpr : public Expr {
public:
  std::vector<ExprPtr> Expressions;
  SequenceExpr(std::vector<ExprPtr> Expressions, SourceLocation Loc)
      : Expr(Kind::Sequence, Loc), Expressions(std::move(Expressions)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Sequence; }
};

/// `a${x}b${y}c` — Quasis has one more element than Substitutions.
class TemplateLiteral : public Expr {
public:
  std::vector<std::string> Quasis;
  std::vector<ExprPtr> Substitutions;
  TemplateLiteral(std::vector<std::string> Quasis,
                  std::vector<ExprPtr> Substitutions, SourceLocation Loc)
      : Expr(Kind::Template, Loc), Quasis(std::move(Quasis)),
        Substitutions(std::move(Substitutions)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Template; }
};

class TaggedTemplateExpr : public Expr {
public:
  ExprPtr Tag;
  ExprPtr Quasi; // A TemplateLiteral.
  TaggedTemplateExpr(ExprPtr Tag, ExprPtr Quasi, SourceLocation Loc)
      : Expr(Kind::TaggedTemplate, Loc), Tag(std::move(Tag)),
        Quasi(std::move(Quasi)) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::TaggedTemplate;
  }
};

class SpreadElement : public Expr {
public:
  ExprPtr Argument;
  SpreadElement(ExprPtr Argument, SourceLocation Loc)
      : Expr(Kind::Spread, Loc), Argument(std::move(Argument)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Spread; }
};

class YieldExpr : public Expr {
public:
  ExprPtr Argument; // May be null.
  bool Delegate = false;
  YieldExpr(ExprPtr Argument, bool Delegate, SourceLocation Loc)
      : Expr(Kind::Yield, Loc), Argument(std::move(Argument)),
        Delegate(Delegate) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Yield; }
};

class AwaitExpr : public Expr {
public:
  ExprPtr Argument;
  AwaitExpr(ExprPtr Argument, SourceLocation Loc)
      : Expr(Kind::Await, Loc), Argument(std::move(Argument)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Await; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind {
    Program,
    Block,
    VarDecl,
    Empty,
    ExprStmt,
    If,
    While,
    DoWhile,
    For,
    ForIn,
    ForOf,
    Return,
    Break,
    Continue,
    FunctionDecl,
    ClassDecl,
    Throw,
    Try,
    Switch,
    Labeled,
    Debugger,
  };

  virtual ~Stmt() = default;
  Kind kind() const { return TheKind; }
  SourceLocation loc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLocation Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLocation Loc;
};

template <typename T> bool isa(const Stmt *S) { return T::classof(S); }
template <typename T> T *cast(Stmt *S) {
  assert(S && T::classof(S) && "invalid stmt cast");
  return static_cast<T *>(S);
}
template <typename T> const T *cast(const Stmt *S) {
  assert(S && T::classof(S) && "invalid stmt cast");
  return static_cast<const T *>(S);
}
template <typename T> T *dyn_cast(Stmt *S) {
  return S && T::classof(S) ? static_cast<T *>(S) : nullptr;
}
template <typename T> const T *dyn_cast(const Stmt *S) {
  return S && T::classof(S) ? static_cast<const T *>(S) : nullptr;
}

class Program : public Stmt {
public:
  std::vector<StmtPtr> Body;
  explicit Program(std::vector<StmtPtr> Body)
      : Stmt(Kind::Program, SourceLocation(1, 1)), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Program; }
};

class BlockStatement : public Stmt {
public:
  std::vector<StmtPtr> Body;
  BlockStatement(std::vector<StmtPtr> Body, SourceLocation Loc)
      : Stmt(Kind::Block, Loc), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }
};

enum class VarDeclKind { Var, Let, Const };

/// One `name = init` declarator. Destructuring declarators keep the pattern
/// in Pattern with an empty Name; the normalizer desugars them.
struct VarDeclarator {
  std::string Name;
  ExprPtr Pattern; // Object/array literal shape when destructuring.
  ExprPtr Init;    // May be null.
  SourceLocation Loc;
};

class VariableDeclaration : public Stmt {
public:
  VarDeclKind DeclKind;
  std::vector<VarDeclarator> Declarators;
  VariableDeclaration(VarDeclKind DeclKind,
                      std::vector<VarDeclarator> Declarators,
                      SourceLocation Loc)
      : Stmt(Kind::VarDecl, Loc), DeclKind(DeclKind),
        Declarators(std::move(Declarators)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::VarDecl; }
};

class EmptyStatement : public Stmt {
public:
  explicit EmptyStatement(SourceLocation Loc) : Stmt(Kind::Empty, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Empty; }
};

class ExpressionStatement : public Stmt {
public:
  ExprPtr Expression;
  ExpressionStatement(ExprPtr Expression, SourceLocation Loc)
      : Stmt(Kind::ExprStmt, Loc), Expression(std::move(Expression)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::ExprStmt; }
};

class IfStatement : public Stmt {
public:
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // May be null.
  IfStatement(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLocation Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }
};

class WhileStatement : public Stmt {
public:
  ExprPtr Cond;
  StmtPtr Body;
  WhileStatement(ExprPtr Cond, StmtPtr Body, SourceLocation Loc)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }
};

class DoWhileStatement : public Stmt {
public:
  StmtPtr Body;
  ExprPtr Cond;
  DoWhileStatement(StmtPtr Body, ExprPtr Cond, SourceLocation Loc)
      : Stmt(Kind::DoWhile, Loc), Body(std::move(Body)),
        Cond(std::move(Cond)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::DoWhile; }
};

class ForStatement : public Stmt {
public:
  StmtPtr Init; // VariableDeclaration or ExpressionStatement; may be null.
  ExprPtr Cond; // May be null.
  ExprPtr Update; // May be null.
  StmtPtr Body;
  ForStatement(StmtPtr Init, ExprPtr Cond, ExprPtr Update, StmtPtr Body,
               SourceLocation Loc)
      : Stmt(Kind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Update(std::move(Update)), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }
};

/// Shared shape for `for (x in o)` and `for (x of o)`.
class ForInOfStatement : public Stmt {
public:
  std::string Variable; // Loop variable name; empty for pattern heads.
  ExprPtr Pattern;      // Destructuring head, e.g. `for (const [k,v] of m)`.
  bool Declares;        // True when the head has var/let/const.
  ExprPtr Object;
  StmtPtr Body;
  ForInOfStatement(Kind K, std::string Variable, bool Declares, ExprPtr Object,
                   StmtPtr Body, SourceLocation Loc)
      : Stmt(K, Loc), Variable(std::move(Variable)), Declares(Declares),
        Object(std::move(Object)), Body(std::move(Body)) {
    assert(K == Kind::ForIn || K == Kind::ForOf);
  }
  static bool classof(const Stmt *S) {
    return S->kind() == Kind::ForIn || S->kind() == Kind::ForOf;
  }
};

class ReturnStatement : public Stmt {
public:
  ExprPtr Argument; // May be null.
  ReturnStatement(ExprPtr Argument, SourceLocation Loc)
      : Stmt(Kind::Return, Loc), Argument(std::move(Argument)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }
};

class BreakStatement : public Stmt {
public:
  std::string Label;
  BreakStatement(std::string Label, SourceLocation Loc)
      : Stmt(Kind::Break, Loc), Label(std::move(Label)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

class ContinueStatement : public Stmt {
public:
  std::string Label;
  ContinueStatement(std::string Label, SourceLocation Loc)
      : Stmt(Kind::Continue, Loc), Label(std::move(Label)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

class FunctionDeclaration : public Stmt {
public:
  ExprPtr Function; // A FunctionExpr with a name.
  FunctionDeclaration(ExprPtr Function, SourceLocation Loc)
      : Stmt(Kind::FunctionDecl, Loc), Function(std::move(Function)) {}
  static bool classof(const Stmt *S) {
    return S->kind() == Kind::FunctionDecl;
  }
};

class ClassDeclaration : public Stmt {
public:
  ExprPtr Class; // A ClassExpr with a name.
  ClassDeclaration(ExprPtr Class, SourceLocation Loc)
      : Stmt(Kind::ClassDecl, Loc), Class(std::move(Class)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::ClassDecl; }
};

class ThrowStatement : public Stmt {
public:
  ExprPtr Argument;
  ThrowStatement(ExprPtr Argument, SourceLocation Loc)
      : Stmt(Kind::Throw, Loc), Argument(std::move(Argument)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Throw; }
};

class TryStatement : public Stmt {
public:
  StmtPtr Block;
  std::string CatchParam; // Empty when no binding.
  StmtPtr Handler;        // May be null.
  StmtPtr Finalizer;      // May be null.
  TryStatement(StmtPtr Block, std::string CatchParam, StmtPtr Handler,
               StmtPtr Finalizer, SourceLocation Loc)
      : Stmt(Kind::Try, Loc), Block(std::move(Block)),
        CatchParam(std::move(CatchParam)), Handler(std::move(Handler)),
        Finalizer(std::move(Finalizer)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Try; }
};

struct SwitchCase {
  ExprPtr Test; // Null for `default:`.
  std::vector<StmtPtr> Body;
  SourceLocation Loc;
};

class SwitchStatement : public Stmt {
public:
  ExprPtr Discriminant;
  std::vector<SwitchCase> Cases;
  SwitchStatement(ExprPtr Discriminant, std::vector<SwitchCase> Cases,
                  SourceLocation Loc)
      : Stmt(Kind::Switch, Loc), Discriminant(std::move(Discriminant)),
        Cases(std::move(Cases)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Switch; }
};

class LabeledStatement : public Stmt {
public:
  std::string Label;
  StmtPtr Body;
  LabeledStatement(std::string Label, StmtPtr Body, SourceLocation Loc)
      : Stmt(Kind::Labeled, Loc), Label(std::move(Label)),
        Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Labeled; }
};

class DebuggerStatement : public Stmt {
public:
  explicit DebuggerStatement(SourceLocation Loc) : Stmt(Kind::Debugger, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Debugger; }
};

/// Pretty-prints an AST as an indented S-expression-like dump (tests).
std::string dump(const Stmt &S);
std::string dump(const Expr &E);

/// Counts AST nodes (used for CPG-size accounting in Table 7).
size_t countNodes(const Stmt &S);

} // namespace ast
} // namespace gjs

#endif // GJS_FRONTEND_AST_H
