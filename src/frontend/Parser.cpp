//===- frontend/Parser.cpp - JavaScript parser ----------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "obs/Trace.h"
#include "support/Deadline.h"

#include <algorithm>

using namespace gjs;
using namespace gjs::ast;

Parser::Parser(std::string Source, DiagnosticEngine &Diags,
               Deadline *ScanDeadline, obs::TraceRecorder *Trace)
    : Diags(Diags), ScanDeadline(ScanDeadline), Trace(Trace) {
  obs::Span LexSpan(Trace, "lex");
  Lexer L(std::move(Source), Diags);
  Tokens = L.lexAll();
  LexSpan.arg("tokens", static_cast<uint64_t>(Tokens.size()));
}

bool Parser::deadlineExpired() {
  return ScanDeadline && ScanDeadline->checkpoint();
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  errorHere(std::string("expected ") + tokenKindName(K) + " " + Context +
            ", found " + tokenKindName(peek().Kind));
  return false;
}

void Parser::errorHere(const std::string &Message) {
  Diags.error(peek().Loc, Message);
}

void Parser::synchronize() {
  while (!check(TokenKind::EndOfFile)) {
    if (accept(TokenKind::Semicolon))
      return;
    switch (peek().Kind) {
    case TokenKind::RBrace:
    case TokenKind::KwFunction:
    case TokenKind::KwVar:
    case TokenKind::KwLet:
    case TokenKind::KwConst:
    case TokenKind::KwIf:
    case TokenKind::KwWhile:
    case TokenKind::KwFor:
    case TokenKind::KwReturn:
      return;
    default:
      advance();
    }
  }
}

void Parser::consumeSemicolon() {
  if (accept(TokenKind::Semicolon))
    return;
  if (check(TokenKind::RBrace) || check(TokenKind::EndOfFile))
    return;
  if (peek().NewlineBefore)
    return;
  errorHere(std::string("expected ';', found ") + tokenKindName(peek().Kind));
  synchronize();
}

bool Parser::checkIdentifierLike() const {
  switch (peek().Kind) {
  case TokenKind::Identifier:
  case TokenKind::KwOf:
  case TokenKind::KwGet:
  case TokenKind::KwSet:
  case TokenKind::KwStatic:
  case TokenKind::KwAsync:
  case TokenKind::KwAwait:
  case TokenKind::KwYield:
  case TokenKind::KwLet:
    return true;
  default:
    return false;
  }
}

std::string Parser::expectIdentifierLike(const char *Context) {
  if (checkIdentifierLike())
    return advance().Text;
  errorHere(std::string("expected identifier ") + Context + ", found " +
            tokenKindName(peek().Kind));
  return "<error>";
}

std::unique_ptr<Program> Parser::parseProgram() {
  obs::Span AstSpan(Trace, "ast");
  std::vector<StmtPtr> Body;
  while (!check(TokenKind::EndOfFile)) {
    // Cooperative cancellation: stop consuming input once the scan
    // deadline expires; the partial program parsed so far is returned.
    if (deadlineExpired())
      break;
    size_t Before = Cur;
    StmtPtr S = parseStatement();
    if (S)
      Body.push_back(std::move(S));
    if (Cur == Before) {
      // No progress: skip the offending token so we always terminate.
      advance();
      synchronize();
    }
  }
  return std::make_unique<Program>(std::move(Body));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseStatement() {
  SourceLocation Loc = peek().Loc;
  switch (peek().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::Semicolon:
    advance();
    return std::make_unique<EmptyStatement>(Loc);
  case TokenKind::KwVar:
  case TokenKind::KwConst:
    return parseVariableDeclaration();
  case TokenKind::KwLet:
    // `let` is contextual: `let x` declares, bare `let` is an identifier.
    if (peek(1).is(TokenKind::Identifier) || peek(1).is(TokenKind::LBrace) ||
        peek(1).is(TokenKind::LBracket))
      return parseVariableDeclaration();
    return parseExpressionStatement();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDoWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwFunction:
    return parseFunctionDeclaration();
  case TokenKind::KwClass:
    return parseClassDeclaration();
  case TokenKind::KwThrow:
    return parseThrow();
  case TokenKind::KwTry:
    return parseTry();
  case TokenKind::KwSwitch:
    return parseSwitch();
  case TokenKind::KwBreak: {
    advance();
    std::string Label;
    if (check(TokenKind::Identifier) && !peek().NewlineBefore)
      Label = advance().Text;
    consumeSemicolon();
    return std::make_unique<BreakStatement>(std::move(Label), Loc);
  }
  case TokenKind::KwContinue: {
    advance();
    std::string Label;
    if (check(TokenKind::Identifier) && !peek().NewlineBefore)
      Label = advance().Text;
    consumeSemicolon();
    return std::make_unique<ContinueStatement>(std::move(Label), Loc);
  }
  case TokenKind::KwDebugger:
    advance();
    consumeSemicolon();
    return std::make_unique<DebuggerStatement>(Loc);
  case TokenKind::KwAsync:
    if (peek(1).is(TokenKind::KwFunction))
      return parseFunctionDeclaration();
    return parseExpressionStatement();
  case TokenKind::Identifier:
    if (peek(1).is(TokenKind::Colon)) {
      std::string Label = advance().Text;
      advance(); // ':'
      StmtPtr Body = parseStatement();
      return std::make_unique<LabeledStatement>(std::move(Label),
                                                std::move(Body), Loc);
    }
    return parseExpressionStatement();
  case TokenKind::KwImport:
    // `import x = require(...)`-style TS is out of scope; ES import
    // declarations are tolerated by skipping to the end of statement so a
    // package with ESM entry points still parses.
    Diags.warning(Loc, "ES module 'import' declaration skipped");
    while (!check(TokenKind::EndOfFile) && !check(TokenKind::Semicolon) &&
           !peek().NewlineBefore)
      advance();
    accept(TokenKind::Semicolon);
    return std::make_unique<EmptyStatement>(Loc);
  case TokenKind::KwExport: {
    // `export default <expr>` and `export <decl>` are lowered to the
    // declared entity; named re-exports are skipped with a warning.
    advance();
    if (accept(TokenKind::KwDefault)) {
      ExprPtr E = parseAssignment();
      consumeSemicolon();
      // Treat as `module.exports = <expr>` so the scanner sees the export.
      auto Target = std::make_unique<MemberExpr>(
          std::make_unique<Identifier>("module", Loc), "exports", Loc);
      auto Assign = std::make_unique<AssignmentExpr>(std::move(Target),
                                                     std::move(E), Loc);
      return std::make_unique<ExpressionStatement>(std::move(Assign), Loc);
    }
    if (check(TokenKind::KwFunction) || check(TokenKind::KwClass) ||
        check(TokenKind::KwVar) || check(TokenKind::KwLet) ||
        check(TokenKind::KwConst))
      return parseStatement();
    Diags.warning(Loc, "ES module 'export' clause skipped");
    while (!check(TokenKind::EndOfFile) && !check(TokenKind::Semicolon) &&
           !peek().NewlineBefore)
      advance();
    accept(TokenKind::Semicolon);
    return std::make_unique<EmptyStatement>(Loc);
  }
  default:
    return parseExpressionStatement();
  }
}

StmtPtr Parser::parseBlock() {
  SourceLocation Loc = peek().Loc;
  expect(TokenKind::LBrace, "to open block");
  std::vector<StmtPtr> Body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    // Deadline expiry mid-block: return the partial block without touching
    // the remaining tokens (no spurious parse errors on cancellation).
    if (deadlineExpired())
      return std::make_unique<BlockStatement>(std::move(Body), Loc);
    size_t Before = Cur;
    StmtPtr S = parseStatement();
    if (S)
      Body.push_back(std::move(S));
    if (Cur == Before)
      advance();
  }
  expect(TokenKind::RBrace, "to close block");
  return std::make_unique<BlockStatement>(std::move(Body), Loc);
}

void Parser::parseBindingTarget(std::string &Name, ExprPtr &Pattern) {
  if (check(TokenKind::LBrace)) {
    Pattern = parseObjectLiteral();
    return;
  }
  if (check(TokenKind::LBracket)) {
    Pattern = parseArrayLiteral();
    return;
  }
  Name = expectIdentifierLike("in binding");
}

StmtPtr Parser::parseVariableDeclaration() {
  SourceLocation Loc = peek().Loc;
  VarDeclKind DK = VarDeclKind::Var;
  switch (advance().Kind) {
  case TokenKind::KwVar:
    DK = VarDeclKind::Var;
    break;
  case TokenKind::KwLet:
    DK = VarDeclKind::Let;
    break;
  case TokenKind::KwConst:
    DK = VarDeclKind::Const;
    break;
  default:
    errorHere("expected var/let/const");
  }
  std::vector<VarDeclarator> Decls;
  do {
    VarDeclarator D;
    D.Loc = peek().Loc;
    parseBindingTarget(D.Name, D.Pattern);
    if (accept(TokenKind::Assign))
      D.Init = parseAssignment();
    Decls.push_back(std::move(D));
  } while (accept(TokenKind::Comma));
  consumeSemicolon();
  return std::make_unique<VariableDeclaration>(DK, std::move(Decls), Loc);
}

StmtPtr Parser::parseIf() {
  SourceLocation Loc = advance().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpression();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr Then = parseStatement();
  StmtPtr Else;
  if (accept(TokenKind::KwElse))
    Else = parseStatement();
  return std::make_unique<IfStatement>(std::move(Cond), std::move(Then),
                                       std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLocation Loc = advance().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpression();
  expect(TokenKind::RParen, "after while condition");
  StmtPtr Body = parseStatement();
  return std::make_unique<WhileStatement>(std::move(Cond), std::move(Body),
                                          Loc);
}

StmtPtr Parser::parseDoWhile() {
  SourceLocation Loc = advance().Loc; // 'do'
  StmtPtr Body = parseStatement();
  expect(TokenKind::KwWhile, "after do-while body");
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpression();
  expect(TokenKind::RParen, "after do-while condition");
  accept(TokenKind::Semicolon);
  return std::make_unique<DoWhileStatement>(std::move(Body), std::move(Cond),
                                            Loc);
}

StmtPtr Parser::parseFor() {
  SourceLocation Loc = advance().Loc; // 'for'
  expect(TokenKind::LParen, "after 'for'");

  bool Declares = check(TokenKind::KwVar) || check(TokenKind::KwLet) ||
                  check(TokenKind::KwConst);

  // Tentatively parse the head as a binding and check for `in`/`of`;
  // rewind and parse a classic for head otherwise.
  size_t Save = Cur;
  if (Declares)
    advance();
  std::string Var;
  ExprPtr Pattern;
  if (checkIdentifierLike() || check(TokenKind::LBrace) ||
      check(TokenKind::LBracket)) {
    // Suppress diagnostics during this speculative parse: on failure we
    // rewind and parse a classic for head instead.
    parseBindingTarget(Var, Pattern);
    if (check(TokenKind::KwIn) || check(TokenKind::KwOf)) {
      bool IsIn = advance().Kind == TokenKind::KwIn;
      ExprPtr Object = parseExpression();
      expect(TokenKind::RParen, "after for-in/of head");
      StmtPtr Body = parseStatement();
      auto S = std::make_unique<ForInOfStatement>(
          IsIn ? Stmt::Kind::ForIn : Stmt::Kind::ForOf, std::move(Var),
          Declares, std::move(Object), std::move(Body), Loc);
      S->Pattern = std::move(Pattern);
      return S;
    }
  }
  Cur = Save;

  // Classic C-style for loop.
  StmtPtr Init;
  if (!check(TokenKind::Semicolon)) {
    if (Declares) {
      Init = parseVariableDeclaration(); // Consumes the first ';' via ASI...
    } else {
      ExprPtr E = parseExpression();
      Init = std::make_unique<ExpressionStatement>(std::move(E), Loc);
      expect(TokenKind::Semicolon, "after for initializer");
    }
  } else {
    advance(); // ';'
  }
  ExprPtr Cond;
  if (!check(TokenKind::Semicolon))
    Cond = parseExpression();
  expect(TokenKind::Semicolon, "after for condition");
  ExprPtr Update;
  if (!check(TokenKind::RParen))
    Update = parseExpression();
  expect(TokenKind::RParen, "after for clauses");
  StmtPtr Body = parseStatement();
  return std::make_unique<ForStatement>(std::move(Init), std::move(Cond),
                                        std::move(Update), std::move(Body),
                                        Loc);
}

StmtPtr Parser::parseReturn() {
  SourceLocation Loc = advance().Loc; // 'return'
  ExprPtr Arg;
  if (!check(TokenKind::Semicolon) && !check(TokenKind::RBrace) &&
      !check(TokenKind::EndOfFile) && !peek().NewlineBefore)
    Arg = parseExpression();
  consumeSemicolon();
  return std::make_unique<ReturnStatement>(std::move(Arg), Loc);
}

StmtPtr Parser::parseFunctionDeclaration() {
  SourceLocation Loc = peek().Loc;
  bool Async = accept(TokenKind::KwAsync);
  ExprPtr Fn = parseFunctionExpr(/*RequireName=*/true);
  if (auto *FE = dyn_cast<FunctionExpr>(Fn.get()))
    FE->IsAsync = Async;
  return std::make_unique<FunctionDeclaration>(std::move(Fn), Loc);
}

StmtPtr Parser::parseClassDeclaration() {
  SourceLocation Loc = peek().Loc;
  ExprPtr Cls = parseClassExpr();
  return std::make_unique<ClassDeclaration>(std::move(Cls), Loc);
}

StmtPtr Parser::parseThrow() {
  SourceLocation Loc = advance().Loc; // 'throw'
  ExprPtr Arg = parseExpression();
  consumeSemicolon();
  return std::make_unique<ThrowStatement>(std::move(Arg), Loc);
}

StmtPtr Parser::parseTry() {
  SourceLocation Loc = advance().Loc; // 'try'
  StmtPtr Block = parseBlock();
  std::string CatchParam;
  StmtPtr Handler;
  StmtPtr Finalizer;
  if (accept(TokenKind::KwCatch)) {
    if (accept(TokenKind::LParen)) {
      std::string Name;
      ExprPtr Pattern;
      parseBindingTarget(Name, Pattern);
      CatchParam = Name;
      expect(TokenKind::RParen, "after catch parameter");
    }
    Handler = parseBlock();
  }
  if (accept(TokenKind::KwFinally))
    Finalizer = parseBlock();
  if (!Handler && !Finalizer)
    errorHere("expected 'catch' or 'finally' after try block");
  return std::make_unique<TryStatement>(std::move(Block),
                                        std::move(CatchParam),
                                        std::move(Handler),
                                        std::move(Finalizer), Loc);
}

StmtPtr Parser::parseSwitch() {
  SourceLocation Loc = advance().Loc; // 'switch'
  expect(TokenKind::LParen, "after 'switch'");
  ExprPtr Disc = parseExpression();
  expect(TokenKind::RParen, "after switch discriminant");
  expect(TokenKind::LBrace, "to open switch body");
  std::vector<SwitchCase> Cases;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    SwitchCase C;
    C.Loc = peek().Loc;
    if (accept(TokenKind::KwCase)) {
      C.Test = parseExpression();
    } else if (!accept(TokenKind::KwDefault)) {
      errorHere("expected 'case' or 'default' in switch body");
      synchronize();
      break;
    }
    expect(TokenKind::Colon, "after case label");
    while (!check(TokenKind::KwCase) && !check(TokenKind::KwDefault) &&
           !check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
      size_t Before = Cur;
      StmtPtr S = parseStatement();
      if (S)
        C.Body.push_back(std::move(S));
      if (Cur == Before)
        advance();
    }
    Cases.push_back(std::move(C));
  }
  expect(TokenKind::RBrace, "to close switch body");
  return std::make_unique<SwitchStatement>(std::move(Disc), std::move(Cases),
                                           Loc);
}

StmtPtr Parser::parseExpressionStatement() {
  SourceLocation Loc = peek().Loc;
  ExprPtr E = parseExpression();
  consumeSemicolon();
  return std::make_unique<ExpressionStatement>(std::move(E), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpression() {
  SourceLocation Loc = peek().Loc;
  ExprPtr First = parseAssignment();
  if (!check(TokenKind::Comma))
    return First;
  std::vector<ExprPtr> Parts;
  Parts.push_back(std::move(First));
  while (accept(TokenKind::Comma))
    Parts.push_back(parseAssignment());
  return std::make_unique<SequenceExpr>(std::move(Parts), Loc);
}

bool Parser::isArrowAhead() const {
  assert(peek().is(TokenKind::LParen) && "lookahead must start at '('");
  int Depth = 0;
  for (size_t I = Cur; I < Tokens.size(); ++I) {
    switch (Tokens[I].Kind) {
    case TokenKind::LParen:
    case TokenKind::LBracket:
    case TokenKind::LBrace:
      ++Depth;
      break;
    case TokenKind::RParen:
    case TokenKind::RBracket:
    case TokenKind::RBrace:
      --Depth;
      if (Depth == 0)
        return I + 1 < Tokens.size() &&
               Tokens[I + 1].is(TokenKind::Arrow);
      break;
    case TokenKind::EndOfFile:
      return false;
    default:
      break;
    }
  }
  return false;
}

ExprPtr Parser::parseAssignment() {
  SourceLocation Loc = peek().Loc;

  // Arrow functions: `x => e`, `(a, b) => e`, `async x => e`.
  bool Async = false;
  size_t Save = Cur;
  if (check(TokenKind::KwAsync) && !peek(1).NewlineBefore &&
      (peek(1).is(TokenKind::Identifier) || peek(1).is(TokenKind::LParen))) {
    // Tentative: only treat as async arrow when `=>` actually follows.
    advance();
    Async = true;
  }
  if (checkIdentifierLike() && peek(1).is(TokenKind::Arrow)) {
    Param P;
    P.Name = advance().Text;
    P.Loc = Loc;
    advance(); // '=>'
    std::vector<Param> Params;
    Params.push_back(std::move(P));
    StmtPtr Body;
    ExprPtr ExprBody;
    if (check(TokenKind::LBrace))
      Body = parseBlock();
    else
      ExprBody = parseAssignment();
    auto A = std::make_unique<ArrowFunctionExpr>(
        std::move(Params), std::move(Body), std::move(ExprBody), Loc);
    A->IsAsync = Async;
    return A;
  }
  if (check(TokenKind::LParen) && isArrowAhead()) {
    std::vector<Param> Params = parseParams();
    expect(TokenKind::Arrow, "after arrow parameters");
    StmtPtr Body;
    ExprPtr ExprBody;
    if (check(TokenKind::LBrace))
      Body = parseBlock();
    else
      ExprBody = parseAssignment();
    auto A = std::make_unique<ArrowFunctionExpr>(
        std::move(Params), std::move(Body), std::move(ExprBody), Loc);
    A->IsAsync = Async;
    return A;
  }
  if (Async)
    Cur = Save; // Not an arrow: re-parse `async` as an identifier.

  ExprPtr LHS = parseConditional();

  auto MakeAssign = [&](bool Compound, BinaryOperator BinOp, bool Logical,
                        LogicalOperator LogOp) -> ExprPtr {
    advance();
    ExprPtr RHS = parseAssignment();
    auto A = std::make_unique<AssignmentExpr>(std::move(LHS), std::move(RHS),
                                              Loc);
    A->IsCompound = Compound;
    A->CompoundOp = BinOp;
    A->IsLogical = Logical;
    A->LogicalOp = LogOp;
    return A;
  };

  switch (peek().Kind) {
  case TokenKind::Assign:
    return MakeAssign(false, BinaryOperator::Add, false, LogicalOperator::And);
  case TokenKind::PlusAssign:
    return MakeAssign(true, BinaryOperator::Add, false, LogicalOperator::And);
  case TokenKind::MinusAssign:
    return MakeAssign(true, BinaryOperator::Sub, false, LogicalOperator::And);
  case TokenKind::StarAssign:
    return MakeAssign(true, BinaryOperator::Mul, false, LogicalOperator::And);
  case TokenKind::SlashAssign:
    return MakeAssign(true, BinaryOperator::Div, false, LogicalOperator::And);
  case TokenKind::PercentAssign:
    return MakeAssign(true, BinaryOperator::Mod, false, LogicalOperator::And);
  case TokenKind::StarStarAssign:
    return MakeAssign(true, BinaryOperator::Pow, false, LogicalOperator::And);
  case TokenKind::LShiftAssign:
    return MakeAssign(true, BinaryOperator::LShift, false,
                      LogicalOperator::And);
  case TokenKind::RShiftAssign:
    return MakeAssign(true, BinaryOperator::RShift, false,
                      LogicalOperator::And);
  case TokenKind::URShiftAssign:
    return MakeAssign(true, BinaryOperator::URShift, false,
                      LogicalOperator::And);
  case TokenKind::AmpAssign:
    return MakeAssign(true, BinaryOperator::BitAnd, false,
                      LogicalOperator::And);
  case TokenKind::PipeAssign:
    return MakeAssign(true, BinaryOperator::BitOr, false,
                      LogicalOperator::And);
  case TokenKind::CaretAssign:
    return MakeAssign(true, BinaryOperator::BitXor, false,
                      LogicalOperator::And);
  case TokenKind::AmpAmpAssign:
    return MakeAssign(false, BinaryOperator::Add, true, LogicalOperator::And);
  case TokenKind::PipePipeAssign:
    return MakeAssign(false, BinaryOperator::Add, true, LogicalOperator::Or);
  case TokenKind::QuestionQuestionAssign:
    return MakeAssign(false, BinaryOperator::Add, true,
                      LogicalOperator::NullishCoalesce);
  default:
    return LHS;
  }
}

ExprPtr Parser::parseConditional() {
  SourceLocation Loc = peek().Loc;
  ExprPtr Cond = parseBinary(0);
  if (!accept(TokenKind::Question))
    return Cond;
  ExprPtr Then = parseAssignment();
  expect(TokenKind::Colon, "in conditional expression");
  ExprPtr Else = parseAssignment();
  return std::make_unique<ConditionalExpr>(std::move(Cond), std::move(Then),
                                           std::move(Else), Loc);
}

namespace {
struct BinOpInfo {
  int Prec; // Higher binds tighter; -1 means "not a binary operator".
  bool Logical;
  BinaryOperator BinOp;
  LogicalOperator LogOp;
};
} // namespace

static BinOpInfo binOpInfo(TokenKind K) {
  switch (K) {
  case TokenKind::QuestionQuestion:
    return {1, true, BinaryOperator::Add, LogicalOperator::NullishCoalesce};
  case TokenKind::PipePipe:
    return {1, true, BinaryOperator::Add, LogicalOperator::Or};
  case TokenKind::AmpAmp:
    return {2, true, BinaryOperator::Add, LogicalOperator::And};
  case TokenKind::Pipe:
    return {3, false, BinaryOperator::BitOr, LogicalOperator::And};
  case TokenKind::Caret:
    return {4, false, BinaryOperator::BitXor, LogicalOperator::And};
  case TokenKind::Amp:
    return {5, false, BinaryOperator::BitAnd, LogicalOperator::And};
  case TokenKind::Equal:
    return {6, false, BinaryOperator::Equal, LogicalOperator::And};
  case TokenKind::NotEqual:
    return {6, false, BinaryOperator::NotEqual, LogicalOperator::And};
  case TokenKind::StrictEqual:
    return {6, false, BinaryOperator::StrictEqual, LogicalOperator::And};
  case TokenKind::StrictNotEqual:
    return {6, false, BinaryOperator::StrictNotEqual, LogicalOperator::And};
  case TokenKind::Less:
    return {7, false, BinaryOperator::Less, LogicalOperator::And};
  case TokenKind::Greater:
    return {7, false, BinaryOperator::Greater, LogicalOperator::And};
  case TokenKind::LessEqual:
    return {7, false, BinaryOperator::LessEqual, LogicalOperator::And};
  case TokenKind::GreaterEqual:
    return {7, false, BinaryOperator::GreaterEqual, LogicalOperator::And};
  case TokenKind::KwIn:
    return {7, false, BinaryOperator::In, LogicalOperator::And};
  case TokenKind::KwInstanceof:
    return {7, false, BinaryOperator::InstanceOf, LogicalOperator::And};
  case TokenKind::LShift:
    return {8, false, BinaryOperator::LShift, LogicalOperator::And};
  case TokenKind::RShift:
    return {8, false, BinaryOperator::RShift, LogicalOperator::And};
  case TokenKind::URShift:
    return {8, false, BinaryOperator::URShift, LogicalOperator::And};
  case TokenKind::Plus:
    return {9, false, BinaryOperator::Add, LogicalOperator::And};
  case TokenKind::Minus:
    return {9, false, BinaryOperator::Sub, LogicalOperator::And};
  case TokenKind::Star:
    return {10, false, BinaryOperator::Mul, LogicalOperator::And};
  case TokenKind::Slash:
    return {10, false, BinaryOperator::Div, LogicalOperator::And};
  case TokenKind::Percent:
    return {10, false, BinaryOperator::Mod, LogicalOperator::And};
  case TokenKind::StarStar:
    return {11, false, BinaryOperator::Pow, LogicalOperator::And};
  default:
    return {-1, false, BinaryOperator::Add, LogicalOperator::And};
  }
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr LHS = parseUnary();
  while (true) {
    BinOpInfo Info = binOpInfo(peek().Kind);
    if (Info.Prec < 0 || Info.Prec < MinPrec)
      return LHS;
    SourceLocation Loc = advance().Loc;
    // `**` is right-associative; everything else is left-associative.
    int NextMin = Info.BinOp == BinaryOperator::Pow && !Info.Logical
                      ? Info.Prec
                      : Info.Prec + 1;
    ExprPtr RHS = parseBinary(NextMin);
    if (Info.Logical)
      LHS = std::make_unique<LogicalExpr>(Info.LogOp, std::move(LHS),
                                          std::move(RHS), Loc);
    else
      LHS = std::make_unique<BinaryExpr>(Info.BinOp, std::move(LHS),
                                         std::move(RHS), Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLocation Loc = peek().Loc;
  switch (peek().Kind) {
  case TokenKind::Minus:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOperator::Minus, parseUnary(),
                                       Loc);
  case TokenKind::Plus:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOperator::Plus, parseUnary(), Loc);
  case TokenKind::Bang:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOperator::Not, parseUnary(), Loc);
  case TokenKind::Tilde:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOperator::BitNot, parseUnary(),
                                       Loc);
  case TokenKind::KwTypeof:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOperator::TypeOf, parseUnary(),
                                       Loc);
  case TokenKind::KwVoid:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOperator::Void, parseUnary(), Loc);
  case TokenKind::KwDelete:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOperator::Delete, parseUnary(),
                                       Loc);
  case TokenKind::PlusPlus:
    advance();
    return std::make_unique<UpdateExpr>(true, true, parseUnary(), Loc);
  case TokenKind::MinusMinus:
    advance();
    return std::make_unique<UpdateExpr>(false, true, parseUnary(), Loc);
  case TokenKind::KwAwait:
    // `await` outside async functions is an identifier; approximate by
    // treating it as the operator whenever an operand follows.
    if (!peek(1).is(TokenKind::EndOfFile) &&
        !peek(1).is(TokenKind::Semicolon) && !peek(1).is(TokenKind::RParen) &&
        !peek(1).is(TokenKind::Comma) && !peek(1).is(TokenKind::Arrow)) {
      advance();
      return std::make_unique<AwaitExpr>(parseUnary(), Loc);
    }
    return parsePostfix();
  case TokenKind::KwYield: {
    advance();
    bool Delegate = accept(TokenKind::Star);
    ExprPtr Arg;
    if (!check(TokenKind::Semicolon) && !check(TokenKind::RParen) &&
        !check(TokenKind::RBrace) && !check(TokenKind::Comma) &&
        !check(TokenKind::RBracket) && !peek().NewlineBefore)
      Arg = parseAssignment();
    return std::make_unique<YieldExpr>(std::move(Arg), Delegate, Loc);
  }
  default:
    return parsePostfix();
  }
}

ExprPtr Parser::parsePostfix() {
  SourceLocation Loc = peek().Loc;
  ExprPtr E = parseCallOrMember(/*AllowCall=*/true);
  if ((check(TokenKind::PlusPlus) || check(TokenKind::MinusMinus)) &&
      !peek().NewlineBefore) {
    bool Inc = advance().Kind == TokenKind::PlusPlus;
    return std::make_unique<UpdateExpr>(Inc, false, std::move(E), Loc);
  }
  return E;
}

ExprPtr Parser::parseNew() {
  SourceLocation Loc = advance().Loc; // 'new'
  if (check(TokenKind::Dot)) {
    // `new.target` — model as an identifier.
    advance();
    expectIdentifierLike("after 'new.'");
    return std::make_unique<Identifier>("new.target", Loc);
  }
  ExprPtr Callee = check(TokenKind::KwNew)
                       ? parseNew()
                       : parseCallOrMember(/*AllowCall=*/false);
  std::vector<ExprPtr> Args;
  if (check(TokenKind::LParen))
    Args = parseArguments();
  return std::make_unique<NewExpr>(std::move(Callee), std::move(Args), Loc);
}

ExprPtr Parser::parseCallOrMember(bool AllowCall) {
  ExprPtr E =
      check(TokenKind::KwNew) ? parseNew() : parsePrimary();
  while (true) {
    SourceLocation Loc = peek().Loc;
    if (accept(TokenKind::Dot)) {
      std::string Name = peek().isKeyword() || checkIdentifierLike()
                             ? advance().Text
                             : expectIdentifierLike("after '.'");
      E = std::make_unique<MemberExpr>(std::move(E), std::move(Name), Loc);
    } else if (accept(TokenKind::QuestionDot)) {
      if (check(TokenKind::LParen)) {
        if (!AllowCall)
          return E;
        std::vector<ExprPtr> Args = parseArguments();
        auto C = std::make_unique<CallExpr>(std::move(E), std::move(Args),
                                            Loc);
        C->Optional = true;
        E = std::move(C);
      } else if (accept(TokenKind::LBracket)) {
        ExprPtr Index = parseExpression();
        expect(TokenKind::RBracket, "after computed member index");
        auto M = std::make_unique<MemberExpr>(std::move(E), std::move(Index),
                                              Loc);
        M->Optional = true;
        E = std::move(M);
      } else {
        std::string Name = peek().isKeyword() || checkIdentifierLike()
                               ? advance().Text
                               : expectIdentifierLike("after '?.'");
        auto M = std::make_unique<MemberExpr>(std::move(E), std::move(Name),
                                              Loc);
        M->Optional = true;
        E = std::move(M);
      }
    } else if (check(TokenKind::LBracket)) {
      advance();
      ExprPtr Index = parseExpression();
      expect(TokenKind::RBracket, "after computed member index");
      E = std::make_unique<MemberExpr>(std::move(E), std::move(Index), Loc);
    } else if (check(TokenKind::LParen) && AllowCall) {
      std::vector<ExprPtr> Args = parseArguments();
      E = std::make_unique<CallExpr>(std::move(E), std::move(Args), Loc);
    } else if (check(TokenKind::TemplateString) ||
               check(TokenKind::TemplateHead)) {
      ExprPtr Quasi = parseTemplate();
      E = std::make_unique<TaggedTemplateExpr>(std::move(E), std::move(Quasi),
                                               Loc);
    } else {
      return E;
    }
  }
}

std::vector<ExprPtr> Parser::parseArguments() {
  expect(TokenKind::LParen, "to open argument list");
  std::vector<ExprPtr> Args;
  if (!check(TokenKind::RParen)) {
    do {
      if (check(TokenKind::RParen))
        break; // Trailing comma.
      SourceLocation Loc = peek().Loc;
      if (accept(TokenKind::DotDotDot))
        Args.push_back(
            std::make_unique<SpreadElement>(parseAssignment(), Loc));
      else
        Args.push_back(parseAssignment());
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close argument list");
  return Args;
}

std::vector<Param> Parser::parseParams() {
  expect(TokenKind::LParen, "to open parameter list");
  std::vector<Param> Params;
  if (!check(TokenKind::RParen)) {
    do {
      if (check(TokenKind::RParen))
        break; // Trailing comma.
      Param P;
      P.Loc = peek().Loc;
      P.Rest = accept(TokenKind::DotDotDot);
      ExprPtr Pattern;
      parseBindingTarget(P.Name, Pattern);
      if (Pattern) {
        // Desugared later by the normalizer; give the pattern a synthetic
        // parameter name and remember the shape via Default slot reuse.
        P.Name = "";
        P.Default = std::move(Pattern);
        if (accept(TokenKind::Assign))
          parseAssignment(); // Discard pattern-level default.
        Params.push_back(std::move(P));
        continue;
      }
      if (accept(TokenKind::Assign))
        P.Default = parseAssignment();
      Params.push_back(std::move(P));
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close parameter list");
  return Params;
}

ExprPtr Parser::parseFunctionExpr(bool RequireName) {
  SourceLocation Loc = peek().Loc;
  bool Async = accept(TokenKind::KwAsync);
  expect(TokenKind::KwFunction, "to start function");
  bool Generator = accept(TokenKind::Star);
  std::string Name;
  if (checkIdentifierLike())
    Name = advance().Text;
  else if (RequireName)
    errorHere("expected function name");
  std::vector<Param> Params = parseParams();
  StmtPtr Body = parseBlock();
  auto F = std::make_unique<FunctionExpr>(std::move(Name), std::move(Params),
                                          std::move(Body), Loc);
  F->IsAsync = Async;
  F->IsGenerator = Generator;
  return F;
}

ExprPtr Parser::parseClassExpr() {
  SourceLocation Loc = peek().Loc;
  expect(TokenKind::KwClass, "to start class");
  std::string Name;
  if (checkIdentifierLike())
    Name = advance().Text;
  ExprPtr Super;
  if (accept(TokenKind::KwExtends))
    Super = parseCallOrMember(/*AllowCall=*/true);
  expect(TokenKind::LBrace, "to open class body");
  std::vector<ClassMember> Members;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (accept(TokenKind::Semicolon))
      continue;
    ClassMember M;
    M.Loc = peek().Loc;
    M.IsStatic = check(TokenKind::KwStatic) &&
                 !peek(1).is(TokenKind::Assign) &&
                 !peek(1).is(TokenKind::LParen);
    if (M.IsStatic)
      advance();
    // Skip getter/setter markers; we model accessors as plain methods.
    if ((check(TokenKind::KwGet) || check(TokenKind::KwSet)) &&
        !peek(1).is(TokenKind::LParen) && !peek(1).is(TokenKind::Assign))
      advance();
    accept(TokenKind::KwAsync);
    accept(TokenKind::Star);
    if (check(TokenKind::PrivateName) || checkIdentifierLike() ||
        peek().isKeyword() || check(TokenKind::StringLiteral)) {
      M.Name = advance().Text;
    } else if (check(TokenKind::LBracket)) {
      advance();
      parseAssignment(); // Computed member name: shape only.
      expect(TokenKind::RBracket, "after computed member name");
      M.Name = "<computed>";
    } else {
      errorHere("expected class member name");
      synchronize();
      break;
    }
    M.IsConstructor = M.Name == "constructor";
    if (check(TokenKind::LParen)) {
      std::vector<Param> Params = parseParams();
      StmtPtr Body = parseBlock();
      M.Value = std::make_unique<FunctionExpr>(M.Name, std::move(Params),
                                               std::move(Body), M.Loc);
    } else if (accept(TokenKind::Assign)) {
      M.Value = parseAssignment();
      consumeSemicolon();
    } else {
      consumeSemicolon(); // Bare field declaration.
    }
    Members.push_back(std::move(M));
  }
  expect(TokenKind::RBrace, "to close class body");
  return std::make_unique<ClassExpr>(std::move(Name), std::move(Super),
                                     std::move(Members), Loc);
}

ExprPtr Parser::parseTemplate() {
  SourceLocation Loc = peek().Loc;
  std::vector<std::string> Quasis;
  std::vector<ExprPtr> Substitutions;
  if (check(TokenKind::TemplateString)) {
    Quasis.push_back(advance().Text);
    return std::make_unique<TemplateLiteral>(std::move(Quasis),
                                             std::move(Substitutions), Loc);
  }
  Quasis.push_back(advance().Text); // TemplateHead
  while (true) {
    Substitutions.push_back(parseExpression());
    if (check(TokenKind::TemplateMiddle)) {
      Quasis.push_back(advance().Text);
      continue;
    }
    if (check(TokenKind::TemplateTail)) {
      Quasis.push_back(advance().Text);
      break;
    }
    errorHere("unterminated template literal substitution");
    Quasis.push_back("");
    break;
  }
  return std::make_unique<TemplateLiteral>(std::move(Quasis),
                                           std::move(Substitutions), Loc);
}

ExprPtr Parser::parseObjectLiteral() {
  SourceLocation Loc = peek().Loc;
  expect(TokenKind::LBrace, "to open object literal");
  std::vector<ObjectProperty> Properties;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    ObjectProperty P;
    P.Loc = peek().Loc;
    if (accept(TokenKind::DotDotDot)) {
      P.Value = std::make_unique<SpreadElement>(parseAssignment(), P.Loc);
      Properties.push_back(std::move(P));
      if (!accept(TokenKind::Comma))
        break;
      continue;
    }
    bool IsGetSet = false;
    if ((check(TokenKind::KwGet) || check(TokenKind::KwSet)) &&
        !peek(1).is(TokenKind::Colon) && !peek(1).is(TokenKind::Comma) &&
        !peek(1).is(TokenKind::RBrace) && !peek(1).is(TokenKind::LParen)) {
      advance();
      IsGetSet = true;
    }
    accept(TokenKind::KwAsync);
    accept(TokenKind::Star);
    if (check(TokenKind::LBracket)) {
      advance();
      P.KeyExpr = parseAssignment();
      expect(TokenKind::RBracket, "after computed property key");
      P.Computed = true;
    } else if (checkIdentifierLike() || peek().isKeyword()) {
      P.Name = advance().Text;
    } else if (check(TokenKind::StringLiteral)) {
      P.Name = advance().Text;
    } else if (check(TokenKind::NumericLiteral)) {
      Token T = advance();
      P.Name = T.Text;
    } else {
      errorHere("expected property name in object literal");
      synchronize();
      break;
    }
    if (check(TokenKind::LParen)) {
      // Method shorthand.
      std::vector<Param> Params = parseParams();
      StmtPtr Body = parseBlock();
      P.Value = std::make_unique<FunctionExpr>(P.Name, std::move(Params),
                                               std::move(Body), P.Loc);
    } else if (accept(TokenKind::Colon)) {
      P.Value = parseAssignment();
    } else if (accept(TokenKind::Assign)) {
      // Pattern default inside destructuring, e.g. `{a = 1} = o`.
      P.Value = parseAssignment();
    } else {
      // Shorthand `{name}`.
      P.Value = std::make_unique<Identifier>(P.Name, P.Loc);
    }
    (void)IsGetSet;
    Properties.push_back(std::move(P));
    if (!accept(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RBrace, "to close object literal");
  return std::make_unique<ObjectLiteral>(std::move(Properties), Loc);
}

ExprPtr Parser::parseArrayLiteral() {
  SourceLocation Loc = peek().Loc;
  expect(TokenKind::LBracket, "to open array literal");
  std::vector<ExprPtr> Elements;
  while (!check(TokenKind::RBracket) && !check(TokenKind::EndOfFile)) {
    if (check(TokenKind::Comma)) {
      advance();
      Elements.push_back(nullptr); // Hole.
      continue;
    }
    SourceLocation ELoc = peek().Loc;
    if (accept(TokenKind::DotDotDot))
      Elements.push_back(
          std::make_unique<SpreadElement>(parseAssignment(), ELoc));
    else
      Elements.push_back(parseAssignment());
    if (!accept(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RBracket, "to close array literal");
  return std::make_unique<ArrayLiteral>(std::move(Elements), Loc);
}

ExprPtr Parser::parsePrimary() {
  SourceLocation Loc = peek().Loc;
  switch (peek().Kind) {
  case TokenKind::NumericLiteral: {
    Token T = advance();
    return std::make_unique<NumberLiteral>(T.NumberValue, Loc);
  }
  case TokenKind::StringLiteral: {
    Token T = advance();
    return std::make_unique<StringLiteral>(T.Text, Loc);
  }
  case TokenKind::RegExpLiteral: {
    Token T = advance();
    return std::make_unique<RegExpLiteral>(T.Text, Loc);
  }
  case TokenKind::TemplateString:
  case TokenKind::TemplateHead:
    return parseTemplate();
  case TokenKind::KwTrue:
    advance();
    return std::make_unique<BooleanLiteral>(true, Loc);
  case TokenKind::KwFalse:
    advance();
    return std::make_unique<BooleanLiteral>(false, Loc);
  case TokenKind::KwNull:
    advance();
    return std::make_unique<NullLiteral>(Loc);
  case TokenKind::KwThis:
    advance();
    return std::make_unique<ThisExpr>(Loc);
  case TokenKind::KwSuper:
    advance();
    return std::make_unique<Identifier>("super", Loc);
  case TokenKind::Identifier: {
    Token T = advance();
    if (T.Text == "undefined")
      return std::make_unique<UndefinedLiteral>(Loc);
    return std::make_unique<Identifier>(T.Text, Loc);
  }
  case TokenKind::KwOf:
  case TokenKind::KwGet:
  case TokenKind::KwSet:
  case TokenKind::KwStatic:
  case TokenKind::KwAsync:
  case TokenKind::KwAwait:
  case TokenKind::KwYield:
  case TokenKind::KwLet:
    return std::make_unique<Identifier>(advance().Text, Loc);
  case TokenKind::LParen: {
    advance();
    ExprPtr E = parseExpression();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  case TokenKind::LBracket:
    return parseArrayLiteral();
  case TokenKind::LBrace:
    return parseObjectLiteral();
  case TokenKind::KwFunction:
    return parseFunctionExpr(/*RequireName=*/false);
  case TokenKind::KwClass:
    return parseClassExpr();
  case TokenKind::KwNew:
    return parseNew();
  default:
    errorHere(std::string("unexpected token ") + tokenKindName(peek().Kind) +
              " in expression");
    advance();
    return std::make_unique<UndefinedLiteral>(Loc);
  }
}

std::unique_ptr<Program> gjs::parseJS(const std::string &Source,
                                      DiagnosticEngine &Diags,
                                      Deadline *ScanDeadline,
                                      obs::TraceRecorder *Trace) {
  Parser P(Source, Diags, ScanDeadline, Trace);
  return P.parseProgram();
}
