//===- frontend/Token.h - JavaScript tokens ----------------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the JavaScript lexer. The set covers the ES5 grammar plus
/// the ES2015+ features npm package code commonly uses (arrow functions,
/// template literals, let/const, spread, optional chaining, nullish
/// coalescing, exponentiation).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_FRONTEND_TOKEN_H
#define GJS_FRONTEND_TOKEN_H

#include "support/SourceLocation.h"

#include <string>

namespace gjs {

enum class TokenKind {
  // Sentinels.
  EndOfFile,
  Invalid,

  // Literals and names.
  Identifier,
  PrivateName,     // #field (lexed, rejected by the parser politely)
  NumericLiteral,  // value in Token::NumberValue
  StringLiteral,   // cooked value in Token::Text
  RegExpLiteral,   // raw pattern+flags in Token::Text
  TemplateString,  // a full `...` template with no substitutions
  TemplateHead,    // `...${
  TemplateMiddle,  // }...${
  TemplateTail,    // }...`

  // Keywords.
  KwBreak, KwCase, KwCatch, KwClass, KwConst, KwContinue, KwDebugger,
  KwDefault, KwDelete, KwDo, KwElse, KwExport, KwExtends, KwFalse,
  KwFinally, KwFor, KwFunction, KwIf, KwImport, KwIn, KwInstanceof,
  KwLet, KwNew, KwNull, KwOf, KwReturn, KwStatic, KwSuper, KwSwitch,
  KwThis, KwThrow, KwTrue, KwTry, KwTypeof, KwVar, KwVoid, KwWhile,
  KwWith, KwYield, KwAsync, KwAwait, KwGet, KwSet,

  // Punctuation.
  LBrace, RBrace, LParen, RParen, LBracket, RBracket,
  Semicolon, Comma, Dot, DotDotDot, Arrow, Question, QuestionDot,
  QuestionQuestion, Colon,

  // Operators.
  Assign,            // =
  PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  StarStarAssign, LShiftAssign, RShiftAssign, URShiftAssign,
  AmpAssign, PipeAssign, CaretAssign, AmpAmpAssign, PipePipeAssign,
  QuestionQuestionAssign,

  Plus, Minus, Star, Slash, Percent, StarStar,
  PlusPlus, MinusMinus,
  Amp, Pipe, Caret, Tilde, LShift, RShift, URShift,
  AmpAmp, PipePipe, Bang,
  Equal, NotEqual, StrictEqual, StrictNotEqual,
  Less, Greater, LessEqual, GreaterEqual,
};

/// Returns a human-readable spelling for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token.
struct Token {
  TokenKind Kind = TokenKind::Invalid;
  SourceLocation Loc;
  /// Identifier spelling, cooked string value, raw regexp, or template chunk.
  std::string Text;
  /// Value for NumericLiteral tokens.
  double NumberValue = 0;
  /// True if a line terminator appeared between the previous token and this
  /// one; drives automatic semicolon insertion.
  bool NewlineBefore = false;

  bool is(TokenKind K) const { return Kind == K; }
  bool isKeyword() const {
    return Kind >= TokenKind::KwBreak && Kind <= TokenKind::KwSet;
  }
};

} // namespace gjs

#endif // GJS_FRONTEND_TOKEN_H
