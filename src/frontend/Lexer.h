//===- frontend/Lexer.h - JavaScript lexer -----------------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written JavaScript lexer. Replaces the Esprima dependency of the
/// original Graph.js artifact (see DESIGN.md substitution table).
///
/// JavaScript cannot be tokenized context-free: `/` starts either a division
/// operator or a regular-expression literal depending on what preceded it.
/// The lexer resolves this with the standard "previous token" heuristic,
/// which is exact for the grammar subset our parser accepts.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_FRONTEND_LEXER_H
#define GJS_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace gjs {

/// Produces a token stream from a JavaScript source buffer.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the next token. At end of input, returns EndOfFile forever.
  ///
  /// Template literals are handled internally: the lexer tracks a stack of
  /// brace depths so a `}` that closes a `${...}` substitution is re-lexed
  /// as a TemplateMiddle/TemplateTail token instead of RBrace. This lets
  /// the parser consume a flat token stream (and lexAll() stay correct).
  Token next();

  /// Lexes all tokens eagerly. The parser uses this so it can backtrack
  /// (needed to disambiguate `(a, b) => e` from a parenthesized expression).
  std::vector<Token> lexAll();

private:
  std::string Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  bool SawNewline = false;
  TokenKind PrevKind = TokenKind::Invalid;
  DiagnosticEngine &Diags;
  /// One entry per open template substitution; counts nested plain braces.
  std::vector<unsigned> TemplateBraceDepth;

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  bool match(char Expected);
  SourceLocation here() const { return SourceLocation(Line, Col); }

  void skipTrivia();
  Token make(TokenKind Kind, SourceLocation Loc);
  Token lexIdentifierOrKeyword(SourceLocation Loc);
  Token lexNumber(SourceLocation Loc);
  Token lexString(SourceLocation Loc, char Quote);
  Token lexTemplate(SourceLocation Loc, bool FromBrace);
  Token lexRegExp(SourceLocation Loc);
  Token lexPunctuation(SourceLocation Loc);

  /// True if a `/` at the current position starts a regexp literal rather
  /// than a division, judging by the previous significant token.
  bool regExpAllowed() const;

  Token finish(Token T) {
    PrevKind = T.Kind;
    T.NewlineBefore = SawNewline;
    SawNewline = false;
    return T;
  }
};

} // namespace gjs

#endif // GJS_FRONTEND_LEXER_H
