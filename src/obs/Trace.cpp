//===- obs/Trace.cpp - Pipeline span tracing -------------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <cstdio>

using namespace gjs;
using namespace gjs::obs;

size_t TraceRecorder::begin(std::string Name) {
  SpanRecord S;
  S.Name = std::move(Name);
  S.StartUs = nowUs();
  S.Depth = static_cast<unsigned>(Open.size());
  S.Parent = Open.empty() ? SpanRecord::npos : Open.back();
  Spans.push_back(std::move(S));
  Open.push_back(Spans.size() - 1);
  return Spans.size() - 1;
}

void TraceRecorder::end(size_t Id) {
  if (Id >= Spans.size())
    return;
  double Now = nowUs();
  // Close everything opened after (and including) Id that is still open:
  // a child span must not outlive its parent in the tree.
  while (!Open.empty() && Open.back() >= Id) {
    SpanRecord &S = Spans[Open.back()];
    if (S.open())
      S.DurUs = Now - S.StartUs;
    Open.pop_back();
  }
}

void TraceRecorder::annotate(size_t Id, std::string Key, std::string Value) {
  if (Id < Spans.size())
    Spans[Id].Args.emplace_back(std::move(Key), std::move(Value));
}

void TraceRecorder::labelPid(int Pid, std::string Label) {
  for (auto &[P, L] : PidLabels)
    if (P == Pid) {
      L = std::move(Label);
      return;
    }
  PidLabels.emplace_back(Pid, std::move(Label));
}

size_t TraceRecorder::addCompletedSpan(std::string Name, double StartUs,
                                       double DurUs, int Pid) {
  SpanRecord S;
  S.Name = std::move(Name);
  S.StartUs = StartUs;
  S.DurUs = DurUs < 0 ? 0 : DurUs;
  S.Pid = Pid;
  Spans.push_back(std::move(S));
  return Spans.size() - 1;
}

void TraceRecorder::addForeignSpans(const std::vector<SpanRecord> &Foreign,
                                    int Pid) {
  size_t Base = Spans.size();
  Spans.reserve(Base + Foreign.size());
  for (SpanRecord S : Foreign) {
    if (S.Parent != SpanRecord::npos)
      S.Parent += Base;
    S.Pid = Pid;
    if (S.DurUs < 0)
      S.DurUs = 0; // A span open at serialization time closes at zero here.
    Spans.push_back(std::move(S));
  }
}

/// Minimal JSON string escaping (obs is dependency-free by design; the
/// grammar needed for span names and annotation values is tiny).
static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

static std::string fmtDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

std::string TraceRecorder::toChromeJSON() const {
  double Now = nowUs();
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  // Lane names first: one process_name metadata event per labeled pid, so
  // a stitched trace shows "supervisor" and "worker <pid>" tracks instead
  // of bare numbers.
  for (const auto &[Pid, Label] : PidLabels) {
    if (!First)
      Out += ",";
    First = false;
    int P = Pid ? Pid : (DefaultPid ? DefaultPid : 1);
    Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(P) + ",\"args\":{\"name\":\"" + jsonEscape(Label) +
           "\"}}";
  }
  for (const SpanRecord &S : Spans) {
    if (!First)
      Out += ",";
    First = false;
    double Dur = S.open() ? Now - S.StartUs : S.DurUs;
    int Pid = S.Pid ? S.Pid : (DefaultPid ? DefaultPid : 1);
    Out += "{\"name\":\"" + jsonEscape(S.Name) +
           "\",\"cat\":\"scan\",\"ph\":\"X\",\"pid\":" + std::to_string(Pid) +
           ",\"tid\":1,\"ts\":" +
           fmtDouble(S.StartUs) + ",\"dur\":" + fmtDouble(Dur);
    if (!S.Args.empty()) {
      Out += ",\"args\":{";
      for (size_t I = 0; I < S.Args.size(); ++I) {
        if (I)
          Out += ",";
        Out += "\"" + jsonEscape(S.Args[I].first) + "\":\"" +
               jsonEscape(S.Args[I].second) + "\"";
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += "]}";
  return Out;
}

std::string TraceRecorder::toText() const {
  double Now = nowUs();
  std::string Out;
  for (const SpanRecord &S : Spans) {
    Out.append(2 * S.Depth, ' ');
    Out += S.Name;
    double Dur = S.open() ? Now - S.StartUs : S.DurUs;
    Out += " (" + fmtDouble(Dur / 1000.0) + "ms";
    if (S.open())
      Out += ", open";
    Out += ")";
    for (const auto &[Key, Value] : S.Args)
      Out += " " + Key + "=" + Value;
    Out += "\n";
  }
  return Out;
}
