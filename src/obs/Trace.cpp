//===- obs/Trace.cpp - Pipeline span tracing -------------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <cstdio>

using namespace gjs;
using namespace gjs::obs;

size_t TraceRecorder::begin(std::string Name) {
  SpanRecord S;
  S.Name = std::move(Name);
  S.StartUs = nowUs();
  S.Depth = static_cast<unsigned>(Open.size());
  S.Parent = Open.empty() ? SpanRecord::npos : Open.back();
  Spans.push_back(std::move(S));
  Open.push_back(Spans.size() - 1);
  return Spans.size() - 1;
}

void TraceRecorder::end(size_t Id) {
  if (Id >= Spans.size())
    return;
  double Now = nowUs();
  // Close everything opened after (and including) Id that is still open:
  // a child span must not outlive its parent in the tree.
  while (!Open.empty() && Open.back() >= Id) {
    SpanRecord &S = Spans[Open.back()];
    if (S.open())
      S.DurUs = Now - S.StartUs;
    Open.pop_back();
  }
}

void TraceRecorder::annotate(size_t Id, std::string Key, std::string Value) {
  if (Id < Spans.size())
    Spans[Id].Args.emplace_back(std::move(Key), std::move(Value));
}

/// Minimal JSON string escaping (obs is dependency-free by design; the
/// grammar needed for span names and annotation values is tiny).
static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

static std::string fmtDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

std::string TraceRecorder::toChromeJSON() const {
  double Now = nowUs();
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (const SpanRecord &S : Spans) {
    if (!First)
      Out += ",";
    First = false;
    double Dur = S.open() ? Now - S.StartUs : S.DurUs;
    Out += "{\"name\":\"" + jsonEscape(S.Name) +
           "\",\"cat\":\"scan\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":" +
           fmtDouble(S.StartUs) + ",\"dur\":" + fmtDouble(Dur);
    if (!S.Args.empty()) {
      Out += ",\"args\":{";
      for (size_t I = 0; I < S.Args.size(); ++I) {
        if (I)
          Out += ",";
        Out += "\"" + jsonEscape(S.Args[I].first) + "\":\"" +
               jsonEscape(S.Args[I].second) + "\"";
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += "]}";
  return Out;
}

std::string TraceRecorder::toText() const {
  double Now = nowUs();
  std::string Out;
  for (const SpanRecord &S : Spans) {
    Out.append(2 * S.Depth, ' ');
    Out += S.Name;
    double Dur = S.open() ? Now - S.StartUs : S.DurUs;
    Out += " (" + fmtDouble(Dur / 1000.0) + "ms";
    if (S.open())
      Out += ", open";
    Out += ")";
    for (const auto &[Key, Value] : S.Args)
      Out += " " + Key + "=" + Value;
    Out += "\n";
  }
  return Out;
}
