//===- obs/Counters.cpp - Process-wide metric counters ---------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Counters.h"

using namespace gjs;
using namespace gjs::obs;

std::atomic<bool> obs::CountersOn{true};

bool obs::setCountersEnabled(bool On) {
  return CountersOn.exchange(On, std::memory_order_relaxed);
}

/// Head of the intrusive registration list. Function-local static so that
/// counters constructed during static initialization in other translation
/// units never observe an uninitialized head.
static std::atomic<Counter *> &registryHead() {
  static std::atomic<Counter *> Head{nullptr};
  return Head;
}

Counter::Counter(const char *Name) : Name(Name) {
  std::atomic<Counter *> &Head = registryHead();
  Next = Head.load(std::memory_order_relaxed);
  while (!Head.compare_exchange_weak(Next, this, std::memory_order_release,
                                     std::memory_order_relaxed)) {
  }
}

CounterSnapshot obs::snapshotCounters() {
  CounterSnapshot Out;
  for (Counter *C = registryHead().load(std::memory_order_acquire); C;
       C = C->next())
    Out[C->name()] = C->value();
  return Out;
}

CounterSnapshot obs::counterDelta(const CounterSnapshot &Before,
                                  const CounterSnapshot &After) {
  CounterSnapshot Out;
  for (const auto &[Name, Value] : After) {
    auto It = Before.find(Name);
    uint64_t Base = It == Before.end() ? 0 : It->second;
    if (Value > Base)
      Out[Name] = Value - Base;
  }
  return Out;
}

void obs::resetCounters() {
  for (Counter *C = registryHead().load(std::memory_order_acquire); C;
       C = C->next())
    C->reset();
}

void obs::mergeCounters(const CounterSnapshot &Deltas) {
  for (Counter *C = registryHead().load(std::memory_order_acquire); C;
       C = C->next()) {
    auto It = Deltas.find(C->name());
    if (It != Deltas.end() && It->second)
      C->merge(It->second);
  }
}

namespace gjs {
namespace obs {
namespace counters {
Counter LexTokens("lex.tokens");
Counter AstNodes("parse.ast_nodes");
Counter CoreStmts("normalize.core_stmts");
Counter CfgBlocks("cfg.blocks");
Counter MdgNodes("build.mdg_nodes");
Counter MdgEdgeD("build.mdg_edges_d");
Counter MdgEdgeP("build.mdg_edges_p");
Counter MdgEdgePU("build.mdg_edges_pu");
Counter MdgEdgeV("build.mdg_edges_v");
Counter MdgEdgeVU("build.mdg_edges_vu");
Counter BuilderStmts("build.abstract_stmts");
Counter ImportNodes("import.nodes");
Counter ImportRels("import.rels");
Counter QuerySteps("query.steps");
Counter QueryBindings("query.bindings");
Counter QueryBacktracks("query.backtracks");
Counter QueryRows("query.rows");
Counter DeadlineUnits("deadline.units");
Counter ScanAttempts("scan.attempts");
Counter ScanRetries("scan.retries");
Counter AsyncAwaitsLowered("async.awaits_lowered");
Counter AsyncReactionsLinked("async.reactions_linked");
Counter AsyncCallbacksUnresolved("async.callbacks_unresolved");
Counter SummariesComputed("summaries.computed");
Counter CallGraphEdgesResolved("callgraph.edges_resolved");
Counter CallGraphEdgesUnresolved("callgraph.edges_unresolved");
Counter PruneQueriesSkipped("prune.queries_skipped");
Counter PruneImportsSkipped("prune.imports_skipped");
Counter WorkerSpawned("worker.spawned");
Counter WorkerCrashed("worker.crashed");
Counter WorkerOomKilled("worker.oom_killed");
Counter WorkerDeadlineKilled("worker.deadline_killed");
Counter WorkerRetried("worker.retried");
Counter WorkerRecycled("worker.recycled");
Counter ServeAccepted("serve.accepted");
Counter ServeRejected("serve.rejected");
Counter ServeInflight("serve.inflight");
Counter ServeClientRetries("serve.client_retries");
Counter JournalDroppedLines("journal.dropped_lines");
Counter LedgerClaims("ledger.claims");
Counter LedgerSteals("ledger.steals");
Counter LedgerExpired("ledger.expired");
Counter QuarantinePackages("quarantine.packages");
} // namespace counters
} // namespace obs
} // namespace gjs
