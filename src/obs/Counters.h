//===- obs/Counters.h - Process-wide metric counters -------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight process-wide counters for the scan pipeline. Every counter
/// is a relaxed atomic registered (at static-initialization time) in one
/// intrusive global list, so hot paths pay a single predictable branch plus
/// one relaxed fetch_add — and nothing at all when counting is disabled.
///
/// The counters feed three consumers:
///  - the BatchDriver journal (per-package counter deltas, machine-readable
///    telemetry for long corpus runs),
///  - the eval harness / benches (aggregate effort metrics next to the
///    Table 6 wall-clock phases),
///  - `graphjs scan --trace` (counter dump next to the span tree).
///
/// The catalog of wired-in counters lives in obs::counters below and is
/// documented in docs/OBSERVABILITY.md. Counter names are stable: journal
/// consumers key on them.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_OBS_COUNTERS_H
#define GJS_OBS_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace gjs {
namespace obs {

/// Global gate for all counters. Relaxed loads keep the disabled path to a
/// load + branch (the "zero overhead when disabled" contract the
/// bench-guard test asserts).
extern std::atomic<bool> CountersOn;

inline bool countersEnabled() {
  return CountersOn.load(std::memory_order_relaxed);
}

/// Enables or disables every counter. Returns the previous state.
bool setCountersEnabled(bool On);

/// One named process-wide counter. Construct only with static storage
/// duration (construction registers the counter in a global intrusive list
/// and there is no deregistration).
class Counter {
public:
  explicit Counter(const char *Name);

  void add(uint64_t N = 1) {
    if (countersEnabled())
      V.fetch_add(N, std::memory_order_relaxed);
  }

  /// Folds an externally-captured delta (a worker's) into this counter,
  /// bypassing the gate — merging is an explicit supervisor action, not a
  /// gated hot path.
  void merge(uint64_t N) { V.fetch_add(N, std::memory_order_relaxed); }

  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

  const char *name() const { return Name; }
  Counter *next() const { return Next; }

private:
  const char *Name;
  Counter *Next = nullptr;
  std::atomic<uint64_t> V{0};
};

/// A point-in-time view of every registered counter, keyed by name.
using CounterSnapshot = std::map<std::string, uint64_t>;

/// Snapshots every registered counter (including zero-valued ones).
CounterSnapshot snapshotCounters();

/// Per-package telemetry: After - Before, dropping zero deltas.
CounterSnapshot counterDelta(const CounterSnapshot &Before,
                             const CounterSnapshot &After);

/// Resets every registered counter to zero (e.g. between batch packages).
void resetCounters();

/// Merges worker counter deltas into the live registry by name — the
/// cross-process stitching half of counterDelta: a supervisor folds each
/// worker's per-job delta into its own registry so process-wide totals
/// stop undercounting multi-process runs. Unknown names are ignored.
void mergeCounters(const CounterSnapshot &Deltas);

/// The wired-in counter catalog (see docs/OBSERVABILITY.md). Names follow
/// "<phase>.<metric>" with the ScanPhase-style lowercase phase names.
namespace counters {
extern Counter LexTokens;       ///< lex.tokens — tokens produced by lexAll.
extern Counter AstNodes;        ///< parse.ast_nodes — AST nodes built.
extern Counter CoreStmts;       ///< normalize.core_stmts — Core IR stmts.
extern Counter CfgBlocks;       ///< cfg.blocks — CFG basic blocks built.
extern Counter MdgNodes;        ///< build.mdg_nodes — MDG nodes allocated.
extern Counter MdgEdgeD;        ///< build.mdg_edges_d — D edges added.
extern Counter MdgEdgeP;        ///< build.mdg_edges_p — P(p) edges added.
extern Counter MdgEdgePU;       ///< build.mdg_edges_pu — P(*) edges added.
extern Counter MdgEdgeV;        ///< build.mdg_edges_v — V(p) edges added.
extern Counter MdgEdgeVU;       ///< build.mdg_edges_vu — V(*) edges added.
extern Counter BuilderStmts;    ///< build.abstract_stmts — abstract stmts.
extern Counter ImportNodes;     ///< import.nodes — property-graph nodes.
extern Counter ImportRels;      ///< import.rels — property-graph rels.
extern Counter QuerySteps;      ///< query.steps — matcher steps taken.
extern Counter QueryBindings;   ///< query.bindings — candidate var binds.
extern Counter QueryBacktracks; ///< query.backtracks — path pops in walks.
extern Counter QueryRows;       ///< query.rows — result rows emitted.
extern Counter DeadlineUnits;   ///< deadline.units — checkpointed work.
extern Counter ScanAttempts;    ///< scan.attempts — pipeline attempts run.
extern Counter ScanRetries;     ///< scan.retries — degradation retries.
extern Counter AsyncAwaitsLowered;      ///< async.awaits_lowered — await
                                        ///< sites rewritten to suspend/resume.
extern Counter AsyncReactionsLinked;    ///< async.reactions_linked — promise
                                        ///< reactions bound to a known fn.
extern Counter AsyncCallbacksUnresolved; ///< async.callbacks_unresolved —
                                        ///< handlers left to the soundness
                                        ///< valve (dynamic callee).
extern Counter SummariesComputed;       ///< summaries.computed — fn summaries.
extern Counter CallGraphEdgesResolved;  ///< callgraph.edges_resolved.
extern Counter CallGraphEdgesUnresolved; ///< callgraph.edges_unresolved.
extern Counter PruneQueriesSkipped;     ///< prune.queries_skipped.
extern Counter PruneImportsSkipped;     ///< prune.imports_skipped.
extern Counter WorkerSpawned;        ///< worker.spawned — pool forks.
extern Counter WorkerCrashed;        ///< worker.crashed — signal/bad exit.
extern Counter WorkerOomKilled;      ///< worker.oom_killed — memory deaths.
extern Counter WorkerDeadlineKilled; ///< worker.deadline_killed — kill ladder.
extern Counter WorkerRetried;        ///< worker.retried — crashed-retry runs.
extern Counter WorkerRecycled;       ///< worker.recycled — planned re-forks.
extern Counter ServeAccepted;        ///< serve.accepted — requests admitted.
extern Counter ServeRejected;        ///< serve.rejected — overloaded/expired.
extern Counter ServeInflight;        ///< serve.inflight — jobs dispatched to
                                     ///< a worker (add-only; "how much work
                                     ///< entered a worker", not a gauge).
extern Counter ServeClientRetries;   ///< serve.client_retries — client-side
                                     ///< backoff retries after "overloaded".
extern Counter JournalDroppedLines;  ///< journal.dropped_lines — torn or
                                     ///< CRC-corrupt journal lines skipped
                                     ///< during resume/merge.
extern Counter LedgerClaims;   ///< ledger.claims — fresh shard leases taken.
extern Counter LedgerSteals;   ///< ledger.steals — stale leases stolen.
extern Counter LedgerExpired;  ///< ledger.expired — leases observed past
                               ///< their heartbeat expiry.
extern Counter QuarantinePackages; ///< quarantine.packages — poison packages
                                   ///< the circuit breaker wrote off.
} // namespace counters

} // namespace obs
} // namespace gjs

#endif // GJS_OBS_COUNTERS_H
