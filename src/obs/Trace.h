//===- obs/Trace.h - Pipeline span tracing -----------------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII span tracing for the scan pipeline. A TraceRecorder collects one
/// tree of timed spans per scan (package → attempt → parse/normalize/
/// build/import/query → per-file and per-query children), exportable as
///
///  - Chrome `trace_event` JSON (load in chrome://tracing or Perfetto) via
///    `graphjs scan --trace-out <file>`, and
///  - a compact indented text tree via `graphjs scan --trace`.
///
/// The recorder is opt-in and branch-on-null: every instrumentation site
/// holds a `TraceRecorder *` that is null in production scans, so the
/// disabled cost is a pointer test. The recorder itself is single-threaded
/// (one recorder per scan), matching the single-threaded pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_OBS_TRACE_H
#define GJS_OBS_TRACE_H

#include <chrono>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace gjs {
namespace obs {

/// One completed (or still open) span. Spans are stored in begin order,
/// which is pre-order for the span tree.
struct SpanRecord {
  std::string Name;
  /// Microseconds since the recorder's epoch.
  double StartUs = 0;
  /// Microseconds; negative while the span is still open.
  double DurUs = -1;
  /// Nesting depth (root spans are 0).
  unsigned Depth = 0;
  /// Index of the enclosing span, or npos for roots.
  size_t Parent = npos;
  /// Key/value annotations (phase metrics, file names, query names).
  std::vector<std::pair<std::string, std::string>> Args;

  static constexpr size_t npos = static_cast<size_t>(-1);
  bool open() const { return DurUs < 0; }
};

/// Records one tree of timed spans.
class TraceRecorder {
public:
  TraceRecorder() : Epoch(Clock::now()) {}

  /// Opens a span nested under the innermost open span.
  size_t begin(std::string Name);

  /// Closes \p Id (and, defensively, any span opened after it that was
  /// never closed — a span must not outlive its parent).
  void end(size_t Id);

  /// Attaches an annotation to \p Id.
  void annotate(size_t Id, std::string Key, std::string Value);

  const std::vector<SpanRecord> &spans() const { return Spans; }

  /// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds).
  /// Open spans are exported with their elapsed-so-far duration.
  std::string toChromeJSON() const;

  /// Compact indented text tree with millisecond durations.
  std::string toText() const;

private:
  using Clock = std::chrono::steady_clock;

  double nowUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - Epoch)
        .count();
  }

  Clock::time_point Epoch;
  std::vector<SpanRecord> Spans;
  std::vector<size_t> Open; ///< Indices of currently open spans.
};

/// RAII span handle. A null recorder makes every operation a no-op, so
/// instrumentation sites need no conditionals of their own.
class Span {
public:
  Span(TraceRecorder *R, std::string Name) : R(R) {
    if (R)
      Id = R->begin(std::move(Name));
  }
  ~Span() { close(); }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a key/value annotation to this span.
  void arg(std::string Key, std::string Value) {
    if (R)
      R->annotate(Id, std::move(Key), std::move(Value));
  }
  void arg(std::string Key, uint64_t Value) {
    arg(std::move(Key), std::to_string(Value));
  }

  /// Closes the span early (before destruction).
  void close() {
    if (R)
      R->end(Id);
    R = nullptr;
  }

private:
  TraceRecorder *R;
  size_t Id = 0;
};

} // namespace obs
} // namespace gjs

#endif // GJS_OBS_TRACE_H
