//===- obs/Trace.h - Pipeline span tracing -----------------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII span tracing for the scan pipeline. A TraceRecorder collects one
/// tree of timed spans per scan (package → attempt → parse/normalize/
/// build/import/query → per-file and per-query children), exportable as
///
///  - Chrome `trace_event` JSON (load in chrome://tracing or Perfetto) via
///    `graphjs scan --trace-out <file>`, and
///  - a compact indented text tree via `graphjs scan --trace`.
///
/// The recorder is opt-in and branch-on-null: every instrumentation site
/// holds a `TraceRecorder *` that is null in production scans, so the
/// disabled cost is a pointer test. The recorder itself is single-threaded
/// (one recorder per scan), matching the single-threaded pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_OBS_TRACE_H
#define GJS_OBS_TRACE_H

#include <chrono>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace gjs {
namespace obs {

/// One completed (or still open) span. Spans are stored in begin order,
/// which is pre-order for the span tree.
struct SpanRecord {
  std::string Name;
  /// Microseconds since the recorder's epoch.
  double StartUs = 0;
  /// Microseconds; negative while the span is still open.
  double DurUs = -1;
  /// Nesting depth (root spans are 0).
  unsigned Depth = 0;
  /// Index of the enclosing span, or npos for roots.
  size_t Parent = npos;
  /// Process lane for Chrome export. 0 = this recorder's own lane (the
  /// recorder's default pid); merged worker spans carry the worker's pid,
  /// putting every process on its own track in the stitched trace.
  int Pid = 0;
  /// Key/value annotations (phase metrics, file names, query names).
  std::vector<std::pair<std::string, std::string>> Args;

  static constexpr size_t npos = static_cast<size_t>(-1);
  bool open() const { return DurUs < 0; }
};

/// Records one tree of timed spans.
class TraceRecorder {
public:
  TraceRecorder() : Epoch(Clock::now()) {}

  /// Opens a span nested under the innermost open span.
  size_t begin(std::string Name);

  /// Closes \p Id (and, defensively, any span opened after it that was
  /// never closed — a span must not outlive its parent).
  void end(size_t Id);

  /// Attaches an annotation to \p Id.
  void annotate(size_t Id, std::string Key, std::string Value);

  const std::vector<SpanRecord> &spans() const { return Spans; }

  /// Current time in microseconds since this recorder's epoch (what a
  /// supervisor stamps on its retroactive scheduling spans).
  double nowUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - Epoch)
        .count();
  }

  /// This recorder's epoch as microseconds since the steady-clock origin.
  /// steady_clock is CLOCK_MONOTONIC — one system-wide timeline — so a
  /// worker can rebase its spans onto the supervisor's epoch exactly:
  /// supervisor-relative start = own start + (own epochUs - supervisor
  /// epochUs). This is what rides in the job request frame.
  uint64_t epochUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Epoch.time_since_epoch())
            .count());
  }

  /// The Chrome-trace lane for this recorder's own spans (0 exports as
  /// pid 1, the single-process default). A stitching supervisor sets its
  /// real pid so its scheduling lane sits beside the worker lanes.
  void setDefaultPid(int P) { DefaultPid = P; }
  int defaultPid() const { return DefaultPid; }

  /// Names a pid lane in the Chrome export ("supervisor", "worker 1234")
  /// via process_name metadata events. Re-labeling a pid overwrites.
  void labelPid(int Pid, std::string Label);

  /// Appends one already-timed span as a closed root (supervisor
  /// scheduling spans are recorded retroactively, at job completion).
  /// Returns its id for annotate().
  size_t addCompletedSpan(std::string Name, double StartUs, double DurUs,
                          int Pid = 0);

  /// Splices a worker's serialized span tree into this recorder: parent
  /// links are rebased onto the appended range, every span is stamped with
  /// \p Pid, and timestamps are taken as already epoch-normalized (the
  /// worker rebased them before encoding). The open-span stack is
  /// untouched — foreign spans are history, not context.
  void addForeignSpans(const std::vector<SpanRecord> &Foreign, int Pid);

  /// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds).
  /// Open spans are exported with their elapsed-so-far duration.
  std::string toChromeJSON() const;

  /// Compact indented text tree with millisecond durations.
  std::string toText() const;

private:
  using Clock = std::chrono::steady_clock;

  Clock::time_point Epoch;
  std::vector<SpanRecord> Spans;
  std::vector<size_t> Open; ///< Indices of currently open spans.
  int DefaultPid = 0;
  std::vector<std::pair<int, std::string>> PidLabels;
};

/// RAII span handle. A null recorder makes every operation a no-op, so
/// instrumentation sites need no conditionals of their own.
class Span {
public:
  Span(TraceRecorder *R, std::string Name) : R(R) {
    if (R)
      Id = R->begin(std::move(Name));
  }
  ~Span() { close(); }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a key/value annotation to this span.
  void arg(std::string Key, std::string Value) {
    if (R)
      R->annotate(Id, std::move(Key), std::move(Value));
  }
  void arg(std::string Key, uint64_t Value) {
    arg(std::move(Key), std::to_string(Value));
  }

  /// Closes the span early (before destruction).
  void close() {
    if (R)
      R->end(Id);
    R = nullptr;
  }

private:
  TraceRecorder *R;
  size_t Id = 0;
};

} // namespace obs
} // namespace gjs

#endif // GJS_OBS_TRACE_H
