//===- obs/Metrics.h - Prometheus-text metric snapshots ----------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prometheus text-exposition rendering of the obs registries: every
/// counter becomes a `counter` sample, every non-empty histogram a
/// `summary` (quantile series + _sum + _count), plus caller-supplied
/// gauges (uptime, queue depth). Names are mangled `scan.latency_us` ->
/// `graphjs_scan_latency_us`. This backs `graphjs serve --metrics-out`,
/// `graphjs batch --metrics-out`, and the metrics_smoke CTest.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_OBS_METRICS_H
#define GJS_OBS_METRICS_H

#include "obs/Counters.h"
#include "obs/Histogram.h"

#include <string>
#include <utility>
#include <vector>

namespace gjs {
namespace obs {

/// Gauge samples rendered alongside the registry snapshots.
using GaugeList = std::vector<std::pair<std::string, double>>;

/// Renders one Prometheus text-format snapshot. Zero-valued counters and
/// empty histograms are dropped (a fresh daemon exposes a small page, not
/// the whole catalog of zeros).
std::string renderPrometheus(const CounterSnapshot &Counters,
                             const HistogramSnapshotMap &Histograms,
                             const GaugeList &Gauges = {});

/// Writes one rendered page of the given snapshots to \p Path, via a temp
/// file + rename so scrapers never observe a torn snapshot. Returns false
/// when the file cannot be written. For callers whose live counter
/// registry is not cumulative (the in-process batch driver resets it per
/// package for journal attribution) — they render accumulated snapshots.
bool writePrometheusFile(const std::string &Path,
                         const CounterSnapshot &Counters,
                         const HistogramSnapshotMap &Histograms,
                         const GaugeList &Gauges = {});

/// Snapshots the live registries and writes one rendered page to \p Path.
bool writePrometheusFile(const std::string &Path,
                         const GaugeList &Gauges = {});

} // namespace obs
} // namespace gjs

#endif // GJS_OBS_METRICS_H
