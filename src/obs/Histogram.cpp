//===- obs/Histogram.cpp - Process-wide latency/size histograms ------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Histogram.h"

#include <cmath>

using namespace gjs;
using namespace gjs::obs;

/// Head of the intrusive registration list. Function-local static so that
/// histograms constructed during static initialization in other translation
/// units never observe an uninitialized head (same pattern as Counters).
static std::atomic<Histogram *> &registryHead() {
  static std::atomic<Histogram *> Head{nullptr};
  return Head;
}

Histogram::Histogram(const char *Name, const char *Unit)
    : Name(Name), Unit(Unit) {
  std::atomic<Histogram *> &Head = registryHead();
  Next = Head.load(std::memory_order_relaxed);
  while (!Head.compare_exchange_weak(Next, this, std::memory_order_release,
                                     std::memory_order_relaxed)) {
  }
}

unsigned Histogram::bucketFor(uint64_t Value) {
  constexpr uint64_t ExactMax = 1ull << HistogramSubBits;
  if (Value < ExactMax)
    return static_cast<unsigned>(Value);
  unsigned Msb = 63u - static_cast<unsigned>(__builtin_clzll(Value));
  unsigned Sub = static_cast<unsigned>(Value >> (Msb - HistogramSubBits)) &
                 (ExactMax - 1);
  return ((Msb - HistogramSubBits + 1) << HistogramSubBits) + Sub;
}

uint64_t Histogram::bucketLo(unsigned Bucket) {
  constexpr unsigned ExactMax = 1u << HistogramSubBits;
  if (Bucket < ExactMax)
    return Bucket;
  unsigned Octave = (Bucket >> HistogramSubBits) + HistogramSubBits - 1;
  if (Octave >= 64)
    return ~0ull;
  unsigned Sub = Bucket & (ExactMax - 1);
  return (1ull << Octave) +
         (static_cast<uint64_t>(Sub) << (Octave - HistogramSubBits));
}

uint64_t Histogram::bucketHi(unsigned Bucket) {
  return Bucket + 1 < HistogramBucketCount ? bucketLo(Bucket + 1) : ~0ull;
}

uint64_t HistogramSnapshot::count() const {
  uint64_t N = 0;
  for (const auto &[Bucket, Count] : Buckets)
    N += Count;
  return N;
}

double HistogramSnapshot::mean() const {
  uint64_t N = count();
  return N ? static_cast<double>(Sum) / static_cast<double>(N) : 0;
}

double HistogramSnapshot::percentile(double Q) const {
  uint64_t N = count();
  if (N == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // Nearest rank: the ceil(Q*N)-th smallest sample (1-based), so p99 of two
  // samples is the larger one and p50 the smaller — percentiles stay
  // non-degenerate as soon as two samples land in different buckets.
  uint64_t Rank = static_cast<uint64_t>(std::ceil(Q * static_cast<double>(N)));
  if (Rank < 1)
    Rank = 1;
  uint64_t Cum = 0;
  for (const auto &[Bucket, Count] : Buckets) {
    Cum += Count;
    if (Cum >= Rank) {
      uint64_t Lo = Histogram::bucketLo(Bucket);
      uint64_t Hi = Histogram::bucketHi(Bucket);
      if (Bucket < (1u << HistogramSubBits) || Hi == ~0ull)
        return static_cast<double>(Lo); // Exact bucket or open-ended top.
      return (static_cast<double>(Lo) + static_cast<double>(Hi)) / 2.0;
    }
  }
  return static_cast<double>(Histogram::bucketLo(Buckets.back().first));
}

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  if (Unit.empty())
    Unit = Other.Unit;
  Sum += Other.Sum;
  std::map<unsigned, uint64_t> Merged;
  for (const auto &[Bucket, Count] : Buckets)
    Merged[Bucket] += Count;
  for (const auto &[Bucket, Count] : Other.Buckets)
    Merged[Bucket] += Count;
  Buckets.assign(Merged.begin(), Merged.end());
}

HistogramSnapshotMap obs::snapshotHistograms() {
  HistogramSnapshotMap Out;
  for (Histogram *H = registryHead().load(std::memory_order_acquire); H;
       H = H->next()) {
    HistogramSnapshot S;
    S.Unit = H->unit();
    S.Sum = H->sum();
    for (unsigned I = 0; I < HistogramBucketCount; ++I)
      if (uint64_t N = H->bucketValue(I))
        S.Buckets.emplace_back(I, N);
    Out[H->name()] = std::move(S);
  }
  return Out;
}

HistogramSnapshotMap obs::histogramDelta(const HistogramSnapshotMap &Before,
                                         const HistogramSnapshotMap &After) {
  HistogramSnapshotMap Out;
  for (const auto &[Name, AfterSnap] : After) {
    auto BIt = Before.find(Name);
    std::map<unsigned, uint64_t> Base;
    uint64_t BaseSum = 0;
    if (BIt != Before.end()) {
      BaseSum = BIt->second.Sum;
      for (const auto &[Bucket, Count] : BIt->second.Buckets)
        Base[Bucket] = Count;
    }
    HistogramSnapshot D;
    D.Unit = AfterSnap.Unit;
    D.Sum = AfterSnap.Sum >= BaseSum ? AfterSnap.Sum - BaseSum : 0;
    for (const auto &[Bucket, Count] : AfterSnap.Buckets) {
      auto It = Base.find(Bucket);
      uint64_t Prior = It == Base.end() ? 0 : It->second;
      if (Count > Prior)
        D.Buckets.emplace_back(Bucket, Count - Prior);
    }
    if (!D.Buckets.empty())
      Out[Name] = std::move(D);
  }
  return Out;
}

void obs::mergeHistograms(const HistogramSnapshotMap &Deltas) {
  for (Histogram *H = registryHead().load(std::memory_order_acquire); H;
       H = H->next()) {
    auto It = Deltas.find(H->name());
    if (It == Deltas.end())
      continue;
    for (const auto &[Bucket, Count] : It->second.Buckets)
      H->mergeBucket(Bucket, Count);
    H->mergeSum(It->second.Sum);
  }
}

void obs::resetHistograms() {
  for (Histogram *H = registryHead().load(std::memory_order_acquire); H;
       H = H->next())
    H->reset();
}

namespace gjs {
namespace obs {
namespace hists {
Histogram ScanLatency("scan.latency_us", "us");
Histogram PhaseParse("phase.parse_us", "us");
Histogram PhaseLower("phase.lower_us", "us");
Histogram PhaseBuild("phase.build_us", "us");
Histogram PhaseImport("phase.import_us", "us");
Histogram PhaseQuery("phase.query_us", "us");
Histogram QueueWait("queue.wait_us", "us");
Histogram WorkerJob("worker.job_us", "us");
Histogram FrameBytes("proto.frame_bytes", "bytes");
Histogram LeaseWait("ledger.lease_wait_us", "us");
} // namespace hists
} // namespace obs
} // namespace gjs
