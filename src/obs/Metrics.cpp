//===- obs/Metrics.cpp - Prometheus-text metric snapshots ------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cstdio>
#include <fstream>

using namespace gjs;
using namespace gjs::obs;

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The catalog's
/// dot-separated names become underscore-separated under a graphjs_ prefix.
static std::string promName(const std::string &Name) {
  std::string Out = "graphjs_";
  for (char C : Name) {
    bool OK = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out.push_back(OK ? C : '_');
  }
  return Out;
}

static std::string fmtValue(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

std::string obs::renderPrometheus(const CounterSnapshot &Counters,
                                  const HistogramSnapshotMap &Histograms,
                                  const GaugeList &Gauges) {
  std::string Out;
  for (const auto &[Name, Value] : Counters) {
    if (!Value)
      continue;
    std::string P = promName(Name);
    Out += "# TYPE " + P + " counter\n";
    Out += P + " " + std::to_string(Value) + "\n";
  }
  for (const auto &[Name, Snap] : Histograms) {
    if (Snap.empty())
      continue;
    std::string P = promName(Name);
    Out += "# TYPE " + P + " summary\n";
    for (double Q : {0.5, 0.9, 0.95, 0.99})
      Out += P + "{quantile=\"" + fmtValue(Q) + "\"} " +
             fmtValue(Snap.percentile(Q)) + "\n";
    Out += P + "_sum " + std::to_string(Snap.Sum) + "\n";
    Out += P + "_count " + std::to_string(Snap.count()) + "\n";
  }
  for (const auto &[Name, Value] : Gauges) {
    std::string P = promName(Name);
    Out += "# TYPE " + P + " gauge\n";
    Out += P + " " + fmtValue(Value) + "\n";
  }
  return Out;
}

bool obs::writePrometheusFile(const std::string &Path,
                              const CounterSnapshot &Counters,
                              const HistogramSnapshotMap &Histograms,
                              const GaugeList &Gauges) {
  if (Path.empty())
    return false;
  std::string Text = renderPrometheus(Counters, Histograms, Gauges);
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream F(Tmp, std::ios::out | std::ios::trunc);
    if (!F)
      return false;
    F << Text;
    F.flush();
    if (!F.good())
      return false;
  }
  return std::rename(Tmp.c_str(), Path.c_str()) == 0;
}

bool obs::writePrometheusFile(const std::string &Path,
                              const GaugeList &Gauges) {
  return writePrometheusFile(Path, snapshotCounters(), snapshotHistograms(),
                             Gauges);
}
