//===- obs/Histogram.h - Process-wide latency/size histograms ----*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free, log-bucketed histograms for the scan pipeline — the latency
/// side of the telemetry story the counters (obs/Counters.h) tell for
/// volume. The paper reports latency *distributions* (Fig. 7 CDFs), and a
/// long-lived daemon cannot answer "what is p99 scan latency" from a sum
/// and a count; it needs cheap-to-record, mergeable distributions.
///
/// Design mirrors Counter exactly:
///
///  - every Histogram is a static-storage object registered in one global
///    intrusive list at static-initialization time;
///  - record() is gated on the same global enable flag as the counters
///    (countersEnabled()): disabled cost is one relaxed load + branch,
///    the "zero overhead when disabled" contract the bench-guard asserts;
///  - buckets are relaxed atomics, so concurrent recording from many
///    threads (or the same registry touched from signal-adjacent paths)
///    never locks and never tears.
///
/// Buckets are log-spaced: values below 2^SubBits get exact unit buckets,
/// larger values split each power-of-two octave into 2^SubBits sub-buckets
/// (relative error <= 1/2^SubBits per recorded value). Snapshots are
/// sparse (only non-empty buckets), associative under merge() — merging
/// per-worker deltas in any order yields the same distribution — and
/// support p50/p90/p95/p99 extraction by rank interpolation.
///
/// The wired-in histogram catalog lives in obs::hists below and is
/// documented in docs/OBSERVABILITY.md. Names are stable: the `metrics`
/// serve op and Prometheus snapshots key on them.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_OBS_HISTOGRAM_H
#define GJS_OBS_HISTOGRAM_H

#include "obs/Counters.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gjs {
namespace obs {

/// Sub-bucket resolution: 2^SubBits sub-buckets per power-of-two octave.
constexpr unsigned HistogramSubBits = 2;
/// Bucket array size. 64 octaves x 4 sub-buckets covers the full uint64
/// range; index 0..(2^SubBits - 1) are exact small-value buckets.
constexpr unsigned HistogramBucketCount = 256;

/// One named process-wide histogram. Construct only with static storage
/// duration (construction registers it in a global intrusive list and
/// there is no deregistration). Unit is advisory ("us", "bytes") and rides
/// into snapshots for rendering.
class Histogram {
public:
  explicit Histogram(const char *Name, const char *Unit = "us");

  /// Records one value. Gated on the same flag as the counters; the
  /// disabled path is one relaxed load + branch.
  void record(uint64_t Value) {
    if (!countersEnabled())
      return;
    Buckets[bucketFor(Value)].fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Value, std::memory_order_relaxed);
  }

  /// Convenience for the common "Timer measured seconds, histogram stores
  /// microseconds" call sites. Negative durations clamp to zero.
  void recordSeconds(double Seconds) {
    record(Seconds > 0 ? static_cast<uint64_t>(Seconds * 1e6) : 0);
  }

  /// Merges an externally-captured delta (e.g. a worker's) directly into
  /// this histogram. Unconditional — merging is an explicit supervisor
  /// action, not a gated hot path.
  void mergeBucket(unsigned Bucket, uint64_t Count) {
    if (Bucket < HistogramBucketCount)
      Buckets[Bucket].fetch_add(Count, std::memory_order_relaxed);
  }
  void mergeSum(uint64_t Delta) {
    Sum.fetch_add(Delta, std::memory_order_relaxed);
  }

  uint64_t bucketValue(unsigned Bucket) const {
    return Bucket < HistogramBucketCount
               ? Buckets[Bucket].load(std::memory_order_relaxed)
               : 0;
  }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }

  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
  }

  const char *name() const { return Name; }
  const char *unit() const { return Unit; }
  Histogram *next() const { return Next; }

  /// The bucket a value lands in. Exact below 2^SubBits; log-spaced with
  /// 2^SubBits sub-buckets per octave above. Bucket indices are contiguous
  /// and monotone in the value.
  static unsigned bucketFor(uint64_t Value);
  /// Smallest value mapping to \p Bucket.
  static uint64_t bucketLo(unsigned Bucket);
  /// Smallest value mapping to the next bucket (exclusive upper bound).
  static uint64_t bucketHi(unsigned Bucket);

private:
  const char *Name;
  const char *Unit;
  Histogram *Next = nullptr;
  std::atomic<uint64_t> Sum{0};
  std::array<std::atomic<uint64_t>, HistogramBucketCount> Buckets{};
};

/// A point-in-time view of one histogram: sparse (index, count) pairs
/// sorted by bucket index, plus the value sum. Mergeable and associative:
/// merge(a, merge(b, c)) == merge(merge(a, b), c) bucket for bucket.
struct HistogramSnapshot {
  std::string Unit;
  uint64_t Sum = 0;
  std::vector<std::pair<unsigned, uint64_t>> Buckets;

  uint64_t count() const;
  double mean() const;

  /// Rank-based percentile estimate (Q in [0, 1]): finds the bucket
  /// holding the Q-quantile sample and returns the bucket midpoint (exact
  /// small buckets return their value exactly). 0 when empty.
  double percentile(double Q) const;

  /// Adds \p Other's buckets and sum into this snapshot.
  void merge(const HistogramSnapshot &Other);

  bool empty() const { return Buckets.empty(); }
};

/// Snapshots keyed by histogram name.
using HistogramSnapshotMap = std::map<std::string, HistogramSnapshot>;

/// Snapshots every registered histogram (including empty ones, so deltas
/// can subtract against a complete baseline).
HistogramSnapshotMap snapshotHistograms();

/// Per-job telemetry: After - Before per bucket, dropping histograms whose
/// delta is empty. The worker->supervisor wire payload.
HistogramSnapshotMap histogramDelta(const HistogramSnapshotMap &Before,
                                    const HistogramSnapshotMap &After);

/// Merges worker deltas into the live registry by name (cross-process
/// stitching: the supervisor folds each worker's per-job delta into its
/// own histograms). Unknown names are ignored.
void mergeHistograms(const HistogramSnapshotMap &Deltas);

/// Resets every registered histogram to empty.
void resetHistograms();

/// The wired-in histogram catalog (see docs/OBSERVABILITY.md). Time
/// histograms store microseconds; size histograms store bytes.
namespace hists {
extern Histogram ScanLatency; ///< scan.latency_us — per-package scan wall.
extern Histogram PhaseParse;  ///< phase.parse_us — parse+normalize (CFG) time.
extern Histogram PhaseLower;  ///< phase.lower_us — async lowering time.
extern Histogram PhaseBuild;  ///< phase.build_us — MDG construction time.
extern Histogram PhaseImport; ///< phase.import_us — graphdb import time.
extern Histogram PhaseQuery;  ///< phase.query_us — query matching time.
extern Histogram QueueWait;   ///< queue.wait_us — serve admission-to-dispatch.
extern Histogram WorkerJob;   ///< worker.job_us — dispatch-to-verdict turnaround.
extern Histogram FrameBytes;  ///< proto.frame_bytes — protocol frame sizes.
extern Histogram LeaseWait;   ///< ledger.lease_wait_us — wanting work to
                              ///< holding a shard lease (claim or steal).
} // namespace hists

} // namespace obs
} // namespace gjs

#endif // GJS_OBS_HISTOGRAM_H
