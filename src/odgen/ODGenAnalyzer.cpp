//===- odgen/ODGenAnalyzer.cpp - ODGen-style baseline analyzer -------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "odgen/ODGenAnalyzer.h"

#include "core/Normalizer.h"
#include "support/Deadline.h"
#include "support/Timer.h"

#include <algorithm>
#include <map>
#include <set>

using namespace gjs;
using namespace gjs::odgen;
using namespace gjs::queries;
using core::Operand;
using core::StmtKind;

ODGenAnalyzer::ODGenAnalyzer(ODGenOptions Options)
    : Options(std::move(Options)) {}

namespace {

/// The ODGen abstract interpreter: unrolling, fresh allocations, in-place
/// object mutation, taint flags propagated along data flow.
class Machine {
public:
  Machine(const core::Program &Prog, const ODGenOptions &O,
          bool HasServerContext)
      : Prog(Prog), Options(O), HasServerContext(HasServerContext) {}

  ODG G;
  bool Aborted = false;
  uint64_t Work = 0;
  std::vector<VulnReport> Reports;

  void run();
  void runQueries();

private:
  const core::Program &Prog;
  const ODGenOptions &Options;
  bool HasServerContext;

  std::map<std::string, ODGNodeId> Env;
  std::map<ODGNodeId, const core::Function *> FuncOf;
  /// Object node -> the dynamic-lookup context it came from (for the
  /// pollution pattern: lookup with tainted name, then tainted write).
  struct DynLookupInfo {
    ODGNodeId Base = InvalidODGNode;
    bool NameTainted = false;
  };
  std::map<ODGNodeId, DynLookupInfo> FromDynLookup;
  /// Call nodes with their argument nodes (for the sink queries).
  struct CallRecord {
    ODGNodeId Node;
    std::string Name, Path;
    std::vector<ODGNodeId> Args;
    SourceLocation Loc;
  };
  std::vector<CallRecord> Calls;
  /// Dynamic property writes (for the pollution query).
  struct DynWrite {
    ODGNodeId Obj, NameNode, Value;
    SourceLocation Loc;
  };
  std::vector<DynWrite> DynWrites;

  unsigned CallDepth = 0;
  ODGNodeId RetNode = InvalidODGNode;
  bool ReturnHit = false;

  /// Abstract-state multiplicity. ODGen's interpreter forks its abstract
  /// state when a dynamic property access on attacker-controlled data can
  /// resolve to several names; chained dynamic accesses in loops and
  /// recursion therefore multiply states — the mechanism behind its
  /// prototype-pollution timeouts (§5.2, §5.5). We model the fork count
  /// and charge each statement once per live state.
  uint64_t StateCount = 1;

  void forkStates(uint64_t Factor) {
    if (StateCount > (1ULL << 40) / (Factor + 1))
      StateCount = 1ULL << 40; // Saturate.
    else
      StateCount *= Factor;
  }

  bool step(uint64_t Cost = 1) {
    uint64_t Charge = Cost * StateCount;
    Work = Work > UINT64_MAX - Charge ? UINT64_MAX : Work + Charge;
    if (Options.WorkBudget != 0 && Work > Options.WorkBudget) {
      Aborted = true;
      return false;
    }
    // Scan-level deadline (the harness's per-package wall-clock budget):
    // checkpointed per interpreted statement, like the Graph.js phases.
    if (Options.ScanDeadline && Options.ScanDeadline->checkpoint()) {
      Aborted = true;
      return false;
    }
    return true;
  }

  bool tainted(ODGNodeId N) const {
    return N != InvalidODGNode && G.node(N).Tainted;
  }

  ODGNodeId fresh(ODGNodeKind K, SourceLocation Loc, const std::string &L,
                  bool Tainted = false) {
    ODGNodeId N = G.addNode(K, Loc, L);
    G.node(N).Tainted = Tainted;
    return N;
  }

  ODGNodeId evalOperand(const Operand &O, SourceLocation Loc);
  void execBlock(const std::vector<core::StmtPtr> &Block);
  void execStmt(const core::Stmt &S);
  void execCall(const core::Stmt &S);
  void callFunction(const core::Function &Fn,
                    const std::vector<ODGNodeId> &Args, ODGNodeId This,
                    ODGNodeId Ret);

  /// Builds the CPG skeleton: an AST node and a CFG node per Core
  /// statement, with structural edges (recursing into nested blocks and
  /// function bodies).
  void buildCPG(const std::vector<core::StmtPtr> &Block, ODGNodeId Parent);
};

void Machine::buildCPG(const std::vector<core::StmtPtr> &Block,
                       ODGNodeId Parent) {
  ODGNodeId PrevCFG = InvalidODGNode;
  for (const core::StmtPtr &S : Block) {
    // ODGen keeps the full Esprima AST: statement, expression, and operand
    // nodes all become graph nodes, plus a CFG node and name nodes for the
    // variables the statement touches. This is most of its 7× node
    // overhead over MDGs (Table 7).
    ODGNodeId A = G.addNode(ODGNodeKind::ASTNode, S->Loc, "ast");
    ODGNodeId E1 = G.addNode(ODGNodeKind::ASTNode, S->Loc, "expr");
    ODGNodeId E2 = G.addNode(ODGNodeKind::ASTNode, S->Loc, "operand");
    ODGNodeId C = G.addNode(ODGNodeKind::CFGNode, S->Loc, "cfg");
    G.addEdge(Parent, A, ODGEdgeKind::AST);
    G.addEdge(A, E1, ODGEdgeKind::AST);
    G.addEdge(E1, E2, ODGEdgeKind::AST);
    G.addEdge(A, C, ODGEdgeKind::AST);
    G.addEdge(E2, C, ODGEdgeKind::AST);
    G.addEdge(C, A, ODGEdgeKind::CFG);
    if (!S->Target.empty()) {
      ODGNodeId Name = G.addNode(ODGNodeKind::Value, S->Loc, S->Target);
      G.addEdge(A, Name, ODGEdgeKind::Scope);
      G.addEdge(Name, E1, ODGEdgeKind::ObjDef);
    }
    if (PrevCFG != InvalidODGNode)
      G.addEdge(PrevCFG, C, ODGEdgeKind::CFG);
    PrevCFG = C;
    buildCPG(S->Then, A);
    buildCPG(S->Else, A);
    buildCPG(S->Body, A);
    if (S->K == StmtKind::FuncDef && S->Func)
      buildCPG(S->Func->Body, A);
  }
}

ODGNodeId Machine::evalOperand(const Operand &O, SourceLocation Loc) {
  if (O.isVar()) {
    auto It = Env.find(O.Name);
    if (It != Env.end())
      return It->second;
    ODGNodeId N = fresh(ODGNodeKind::Object, Loc, O.Name);
    Env[O.Name] = N;
    return N;
  }
  // Fresh value node per literal *execution* — no memoization, so loops
  // multiply these (part of the ODG growth profile).
  return fresh(ODGNodeKind::Value, Loc, O.str());
}

void Machine::execBlock(const std::vector<core::StmtPtr> &Block) {
  for (const core::StmtPtr &S : Block) {
    if (Aborted || ReturnHit)
      return;
    execStmt(*S);
  }
}

void Machine::execStmt(const core::Stmt &S) {
  if (!step())
    return;

  switch (S.K) {
  case StmtKind::Assign: {
    Env[S.Target] = evalOperand(S.Value, S.Loc);
    break;
  }
  case StmtKind::BinOp: {
    ODGNodeId L = evalOperand(S.LHS, S.Loc);
    ODGNodeId R = evalOperand(S.RHS, S.Loc);
    ODGNodeId N = fresh(ODGNodeKind::Value, S.Loc, S.Target,
                        tainted(L) || tainted(R));
    G.addEdge(L, N, ODGEdgeKind::DataFlow);
    G.addEdge(R, N, ODGEdgeKind::DataFlow);
    Env[S.Target] = N;
    break;
  }
  case StmtKind::UnOp: {
    ODGNodeId V = evalOperand(S.Value, S.Loc);
    ODGNodeId N = fresh(ODGNodeKind::Value, S.Loc, S.Target, tainted(V));
    G.addEdge(V, N, ODGEdgeKind::DataFlow);
    Env[S.Target] = N;
    break;
  }
  case StmtKind::NewObject: {
    // Fresh object node per execution: the object-explosion source.
    ODGNodeId N = fresh(ODGNodeKind::Object, S.Loc, S.Target);
    Env[S.Target] = N;
    break;
  }
  case StmtKind::FuncDef: {
    ODGNodeId N = fresh(ODGNodeKind::Value, S.Loc, S.Func->Name);
    FuncOf[N] = S.Func.get();
    Env[S.Target] = N;
    break;
  }
  case StmtKind::StaticLookup: {
    ODGNodeId Obj = evalOperand(S.Obj, S.Loc);
    ODGNode &ON = G.node(Obj);
    ODGNodeId R;
    auto It = ON.Props.find(S.Prop);
    if (It != ON.Props.end()) {
      R = It->second;
    } else {
      R = fresh(ODGNodeKind::Value, S.Loc, S.Target, ON.Tainted);
      G.node(Obj).Props[S.Prop] = R;
      G.addEdge(Obj, R, ODGEdgeKind::Property, S.Prop);
    }
    if (tainted(Obj))
      G.node(R).Tainted = true; // Deep taint through objects.
    Env[S.Target] = R;
    break;
  }
  case StmtKind::DynamicLookup: {
    ODGNodeId Obj = evalOperand(S.Obj, S.Loc);
    ODGNodeId Name = S.PropOperand.isVar()
                         ? evalOperand(S.PropOperand, S.Loc)
                         : InvalidODGNode;
    ODGNode &ON = G.node(Obj);
    ODGNodeId R;
    auto It = ON.Props.find("*");
    if (It != ON.Props.end()) {
      R = It->second;
    } else {
      R = fresh(ODGNodeKind::Value, S.Loc, S.Target, ON.Tainted);
      G.node(Obj).Props["*"] = R;
      G.addEdge(Obj, R, ODGEdgeKind::Property, "*");
    }
    if (tainted(Obj) || tainted(Name))
      G.node(R).Tainted = true;
    if (Name != InvalidODGNode)
      G.addEdge(Name, R, ODGEdgeKind::DataFlow);
    FromDynLookup[R] = {Obj, tainted(Name)};
    Env[S.Target] = R;
    // A dynamic read with attacker-influenced name forks the abstract
    // state across the object's possible properties.
    if (tainted(Obj) || tainted(Name))
      forkStates(G.node(Obj).Props.size() + 2);
    break;
  }
  case StmtKind::StaticUpdate: {
    ODGNodeId Obj = evalOperand(S.Obj, S.Loc);
    ODGNodeId Val = evalOperand(S.Value, S.Loc);
    // In-place mutation: no version nodes, write order is lost — one of
    // the representational differences from MDGs (§6). Once a tainted
    // value has been written into an object, the object stays tainted:
    // without versioning there is no way to retract on overwrite, so
    // sanitizing rewrites still produce reports (the baseline's taint-
    // style true-false-positive source).
    G.node(Obj).Props[S.Prop] = Val;
    G.addEdge(Obj, Val, ODGEdgeKind::Property, S.Prop);
    if (tainted(Val))
      G.node(Obj).Tainted = true;
    break;
  }
  case StmtKind::DynamicUpdate: {
    ODGNodeId Obj = evalOperand(S.Obj, S.Loc);
    ODGNodeId Name = S.PropOperand.isVar()
                         ? evalOperand(S.PropOperand, S.Loc)
                         : InvalidODGNode;
    ODGNodeId Val = evalOperand(S.Value, S.Loc);
    G.node(Obj).Props["*"] = Val;
    G.addEdge(Obj, Val, ODGEdgeKind::Property, "*");
    if (Name != InvalidODGNode)
      G.addEdge(Name, Obj, ODGEdgeKind::DataFlow);
    if (tainted(Val))
      G.node(Obj).Tainted = true;
    DynWrites.push_back({Obj, Name, Val, S.Loc});
    // A dynamic write with an attacker-influenced name forks on the
    // possible write targets.
    if (tainted(Name))
      forkStates(4);
    break;
  }
  case StmtKind::Call:
    execCall(S);
    break;
  case StmtKind::Return: {
    ODGNodeId V = evalOperand(S.Value, S.Loc);
    if (RetNode != InvalidODGNode) {
      G.addEdge(V, RetNode, ODGEdgeKind::DataFlow);
      if (tainted(V))
        G.node(RetNode).Tainted = true;
    }
    ReturnHit = true;
    break;
  }
  case StmtKind::If: {
    // Both branches execute in sequence (path-insensitive join). The body
    // only stops afterwards when *both* branches must return — a return
    // in one branch of a guard must not cut off the rest of the analysis.
    bool Before = ReturnHit;
    execBlock(S.Then);
    bool ThenReturned = ReturnHit;
    ReturnHit = Before;
    execBlock(S.Else);
    bool ElseReturned = ReturnHit;
    ReturnHit = Before || (ThenReturned && ElseReturned && !S.Else.empty());
    break;
  }
  case StmtKind::While: {
    // Bounded unrolling: each iteration re-executes the body with fresh
    // allocations. Nested loops multiply (UnrollLimit^depth).
    for (unsigned I = 0; I < Options.UnrollLimit && !Aborted && !ReturnHit;
         ++I)
      execBlock(S.Body);
    break;
  }
  case StmtKind::Nop:
    break;
  }
}

void Machine::execCall(const core::Stmt &S) {
  ODGNodeId Callee = evalOperand(S.Callee, S.Loc);
  ODGNodeId CallNode = fresh(ODGNodeKind::Call, S.Loc,
                             S.CalleeName.empty() ? "call" : S.CalleeName);
  G.node(CallNode).CallName = S.CalleeName;
  G.node(CallNode).CallPath = S.CalleePath;

  CallRecord Rec;
  Rec.Node = CallNode;
  Rec.Name = S.CalleeName;
  Rec.Path = S.CalleePath;
  Rec.Loc = S.Loc;
  for (const Operand &A : S.Args) {
    ODGNodeId AN = evalOperand(A, S.Loc);
    G.addEdge(AN, CallNode, ODGEdgeKind::CallEdge);
    Rec.Args.push_back(AN);
  }
  Calls.push_back(Rec);

  ODGNodeId Ret = fresh(ODGNodeKind::Value, S.Loc, S.Target);
  G.addEdge(CallNode, Ret, ODGEdgeKind::DataFlow);
  for (ODGNodeId AN : Rec.Args)
    if (tainted(AN))
      G.node(Ret).Tainted = true;
  // Methods on tainted receivers return tainted data (`prop.split('.')`).
  if (S.Receiver.isVar()) {
    ODGNodeId Recv = evalOperand(S.Receiver, S.Loc);
    G.addEdge(Recv, CallNode, ODGEdgeKind::CallEdge);
    if (tainted(Recv))
      G.node(Ret).Tainted = true;
  }
  Env[S.Target] = Ret;

  auto FIt = FuncOf.find(Callee);
  if (FIt != FuncOf.end() && CallDepth < Options.MaxCallDepth) {
    ODGNodeId This = InvalidODGNode;
    if (S.IsNew) {
      This = fresh(ODGNodeKind::Object, S.Loc, S.Target);
      Env[S.Target] = This;
    } else if (S.Receiver.isVar()) {
      This = evalOperand(S.Receiver, S.Loc);
    }
    ++CallDepth;
    callFunction(*FIt->second, Rec.Args, This, Ret);
    --CallDepth;
  }
}

void Machine::callFunction(const core::Function &Fn,
                           const std::vector<ODGNodeId> &Args, ODGNodeId This,
                           ODGNodeId Ret) {
  std::vector<std::pair<std::string, ODGNodeId>> Saved;
  auto Bind = [&](const std::string &Name, ODGNodeId N) {
    auto It = Env.find(Name);
    Saved.push_back({Name, It != Env.end() ? It->second : InvalidODGNode});
    Env[Name] = N != InvalidODGNode
                    ? N
                    : fresh(ODGNodeKind::Value, Fn.Loc, Name);
  };
  for (size_t I = 0; I < Fn.Params.size(); ++I)
    Bind(Fn.Params[I], I < Args.size() ? Args[I] : InvalidODGNode);
  Bind("this", This);
  // ODGen models the `arguments` object — one of its advantages over
  // Graph.js, whose MDGs "do not provide full support for the arguments
  // ... keyword" (§5.2). Taint flows through arguments[i].
  {
    ODGNodeId ArgsObj = fresh(ODGNodeKind::Object, Fn.Loc, "arguments");
    for (size_t I = 0; I < Args.size(); ++I) {
      G.node(ArgsObj).Props[std::to_string(I)] = Args[I];
      G.addEdge(ArgsObj, Args[I], ODGEdgeKind::Property, std::to_string(I));
      if (tainted(Args[I]))
        G.node(ArgsObj).Tainted = true;
    }
    Bind("arguments", ArgsObj);
  }

  ODGNodeId SavedRet = RetNode;
  bool SavedHit = ReturnHit;
  RetNode = Ret;
  ReturnHit = false;
  execBlock(Fn.Body);
  RetNode = SavedRet;
  ReturnHit = SavedHit;

  for (auto It = Saved.rbegin(); It != Saved.rend(); ++It) {
    if (It->second == InvalidODGNode)
      Env.erase(It->first);
    else
      Env[It->first] = It->second;
  }
}

void Machine::run() {
  // CPG skeleton first (ODGen keeps the full AST/CFG in the graph).
  ODGNodeId Root = G.addNode(ODGNodeKind::Scope, SourceLocation(), "module");
  buildCPG(Prog.TopLevel, Root);
  for (const auto &[Name, Fn] : Prog.Functions) {
    (void)Name;
    (void)Fn;
  }

  execBlock(Prog.TopLevel);
  if (Aborted)
    return;

  // Entry points: exported functions with tainted parameters.
  std::set<std::string> Entries;
  for (const core::ExportEntry &E : Prog.Exports)
    if (!E.FunctionName.empty())
      Entries.insert(E.FunctionName);
  if (Entries.empty())
    for (const auto &[Name, Fn] : Prog.Functions) {
      (void)Fn;
      Entries.insert(Name);
    }

  for (const std::string &Name : Entries) {
    if (Aborted)
      return;
    auto It = Prog.Functions.find(Name);
    if (It == Prog.Functions.end())
      continue;
    const core::Function &Fn = *It->second;
    StateCount = 1; // Forked states do not leak across entry points.
    std::vector<ODGNodeId> Args;
    for (const std::string &Param : Fn.Params)
      Args.push_back(
          fresh(ODGNodeKind::Object, Fn.Loc, Param, /*Tainted=*/true));
    // Attackers choose the call arity: `arguments[i]` must see tainted
    // values even in functions that declare no parameters.
    while (Args.size() < 4)
      Args.push_back(fresh(ODGNodeKind::Object, Fn.Loc,
                           "arg" + std::to_string(Args.size()),
                           /*Tainted=*/true));
    ODGNodeId This = fresh(ODGNodeKind::Object, Fn.Loc, "this");
    ODGNodeId Ret = fresh(ODGNodeKind::Value, Fn.Loc, "$ret");
    callFunction(Fn, Args, This, Ret);
  }
}

void Machine::runQueries() {
  if (Aborted)
    return; // ODGen's timeout behavior: no partial reports.

  std::set<VulnReport> Dedup;
  auto Report = [&](VulnType T, SourceLocation Loc, const std::string &Name,
                    const std::string &Path) {
    VulnReport R;
    R.Type = T;
    R.SinkLoc = Loc;
    R.SinkName = Name;
    R.SinkPath = Path;
    if (Dedup.insert(R).second)
      Reports.push_back(std::move(R));
  };

  // Taint-style: native scan over call records with taint flags — fast.
  for (const CallRecord &C : Calls) {
    if (!step(2))
      return;
    for (VulnType T : {VulnType::CommandInjection, VulnType::CodeInjection,
                       VulnType::PathTraversal}) {
      // ODGen's CWE-22 queries require a web-server context (§5.2).
      if (T == VulnType::PathTraversal && !HasServerContext)
        continue;
      for (const SinkSpec &Spec : Options.Sinks.sinks(T)) {
        if (!SinkConfig::matchesCall(Spec, C.Name, C.Path))
          continue;
        for (unsigned I = 0; I < C.Args.size(); ++I)
          if (SinkConfig::argIsSensitive(Spec, I) && tainted(C.Args[I]))
            Report(T, C.Loc, C.Name, C.Path);
      }
    }
  }

  // Prototype pollution: backward walks over the (possibly exploded)
  // graph for each dynamic write — this is where ODGen spends its query
  // time (Table 6: its CWE-1321 traversal phase dwarfs the others).
  std::vector<std::vector<ODGNodeId>> In(G.numNodes());
  for (const ODGEdge &E : G.edges()) {
    if (E.Kind == ODGEdgeKind::DataFlow || E.Kind == ODGEdgeKind::Property)
      In[E.To].push_back(E.From);
  }
  for (const DynWrite &W : DynWrites) {
    if (Aborted)
      return;
    // Backward DFS: does attacker data flow into the written value?
    auto BackwardTainted = [&](ODGNodeId Start) {
      std::vector<bool> Seen(G.numNodes(), false);
      std::vector<ODGNodeId> Stack{Start};
      Seen[Start] = true;
      while (!Stack.empty()) {
        ODGNodeId N = Stack.back();
        Stack.pop_back();
        if (!step(1))
          return false;
        if (G.node(N).Tainted)
          return true;
        for (ODGNodeId P : In[N])
          if (!Seen[P]) {
            Seen[P] = true;
            Stack.push_back(P);
          }
      }
      return false;
    };

    auto LIt = FromDynLookup.find(W.Obj);
    if (LIt == FromDynLookup.end())
      continue; // Write target not obtained from a dynamic lookup.
    if (!LIt->second.NameTainted)
      continue;
    if (W.NameNode == InvalidODGNode || !tainted(W.NameNode))
      continue;
    if (!tainted(W.Value) && !BackwardTainted(W.Value))
      continue;
    Report(VulnType::PrototypePollution, W.Loc, "", "");
    if (Aborted)
      return;
  }
}

} // namespace

ODGenResult ODGenAnalyzer::analyzeProgram(const core::Program &Program,
                                          bool HasServerContext) {
  ODGenResult Out;
  Machine M(Program, Options, HasServerContext);

  Timer Phase;
  M.run();
  Out.GraphSeconds = Phase.elapsedSeconds();

  Phase.reset();
  M.runQueries();
  Out.QuerySeconds = Phase.elapsedSeconds();

  Out.Reports = std::move(M.Reports);
  Out.TimedOut = M.Aborted;
  if (Out.TimedOut)
    Out.Reports.clear(); // Timeouts yield no findings (§5.2).
  Out.NumNodes = M.G.numNodes();
  Out.NumEdges = M.G.numEdges();
  Out.Work = M.Work;
  return Out;
}

ODGenResult ODGenAnalyzer::analyze(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Prog = core::normalizeJS(Source, Diags);
  if (Diags.hasErrors()) {
    ODGenResult Out;
    Out.ParseFailed = true;
    return Out;
  }
  bool HasServerContext = Source.find("createServer") != std::string::npos ||
                          Source.find("http.Server") != std::string::npos;
  return analyzeProgram(*Prog, HasServerContext);
}
