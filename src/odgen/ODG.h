//===- odgen/ODG.h - Object Dependence Graph (baseline) ----------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The combined CPG+ODG data structure of the ODGen baseline (Li et al.,
/// reimplemented here as the paper's comparison system). Nodes represent
/// AST nodes, CFG nodes, scopes, objects, and values; §2 lists seven edge
/// kinds between the CPG and ODG:
///
///   AST       — syntax tree structure
///   CFG       — control flow
///   ObjDef    — object -> AST node where it was declared
///   DataFlow  — value/object -> value/object dependency
///   Property  — object -> property value (with the property name)
///   Scope     — scope nesting / variable containment
///   CallEdge  — argument/callee -> call node
///
/// Two design points drive the evaluation's contrasts with MDGs: the graph
/// keeps the full AST+CFG (most of the 7.2× node overhead of Table 7), and
/// the interpreter allocates a fresh object node every time an object
/// initializer executes — in unrolled loops this is the "object explosion
/// problem noted by its authors" (§5.4).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_ODGEN_ODG_H
#define GJS_ODGEN_ODG_H

#include "support/SourceLocation.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gjs {
namespace odgen {

using ODGNodeId = uint32_t;
constexpr ODGNodeId InvalidODGNode = static_cast<ODGNodeId>(-1);

enum class ODGNodeKind : uint8_t {
  ASTNode,
  CFGNode,
  Scope,
  Object,
  Value,
  Call,
};

enum class ODGEdgeKind : uint8_t {
  AST,
  CFG,
  ObjDef,
  DataFlow,
  Property,
  Scope,
  CallEdge,
};

struct ODGNode {
  ODGNodeKind Kind = ODGNodeKind::Value;
  SourceLocation Loc;
  std::string Label;
  bool Tainted = false;
  /// Object payload: property name -> node ("*" for unknown names).
  std::map<std::string, ODGNodeId> Props;
  /// Call payload.
  std::string CallName;
  std::string CallPath;
};

struct ODGEdge {
  ODGNodeId From = InvalidODGNode;
  ODGNodeId To = InvalidODGNode;
  ODGEdgeKind Kind = ODGEdgeKind::DataFlow;
  std::string Name; // Property name for Property edges.
};

/// The combined CPG+ODG store.
class ODG {
public:
  ODGNodeId addNode(ODGNodeKind Kind, SourceLocation Loc,
                    std::string Label = "");
  void addEdge(ODGNodeId From, ODGNodeId To, ODGEdgeKind Kind,
               std::string Name = "");

  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const { return Edges.size(); }

  ODGNode &node(ODGNodeId Id) { return Nodes[Id]; }
  const ODGNode &node(ODGNodeId Id) const { return Nodes[Id]; }
  const std::vector<ODGEdge> &edges() const { return Edges; }
  const std::vector<uint32_t> &out(ODGNodeId Id) const { return Out[Id]; }
  const ODGEdge &edge(uint32_t E) const { return Edges[E]; }

private:
  std::vector<ODGNode> Nodes;
  std::vector<ODGEdge> Edges;
  std::vector<std::vector<uint32_t>> Out;
};

} // namespace odgen
} // namespace gjs

#endif // GJS_ODGEN_ODG_H
