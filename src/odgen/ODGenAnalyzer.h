//===- odgen/ODGenAnalyzer.h - ODGen-style baseline analyzer -----*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ODGen-style baseline the paper evaluates against. Shares the
/// frontend and Core JavaScript lowering with Graph.js (both tools parse
/// the same language) but differs in exactly the ways §5 measures:
///
///  - builds the full CPG (AST + CFG node per statement) alongside the
///    ODG, so graphs are much larger (Table 7);
///  - abstract interpretation **unrolls loops** (UnrollLimit iterations)
///    and allocates a fresh object node per object-initializer execution
///    and per update — the object-explosion behavior;
///  - recursion is re-entered up to a depth limit with fresh objects (no
///    summaries), which is why prototype-pollution patterns "involving
///    recursion and loops" exhaust the work budget (§5.2);
///  - vulnerability checks run *during* interpretation with native (fast)
///    data-flow walks — quick on small packages (the Figure 7 head) but
///    all-or-nothing under timeouts;
///  - path-traversal reports require a web-server context (createServer),
///    reproducing ODGen's zero CWE-22 true-false-positives (§5.2).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_ODGEN_ODGENANALYZER_H
#define GJS_ODGEN_ODGENANALYZER_H

#include "core/CoreIR.h"
#include "odgen/ODG.h"
#include "queries/SinkConfig.h"
#include "queries/VulnTypes.h"

#include <set>
#include <string>
#include <vector>

namespace gjs {

class Deadline;

namespace odgen {

struct ODGenOptions {
  unsigned UnrollLimit = 4;
  unsigned MaxCallDepth = 4;
  /// Abstract work budget; exhausting it aborts the analysis with only the
  /// reports found so far (ODGen's observed timeout behavior).
  uint64_t WorkBudget = 50000;
  /// Optional scan-level cancellation token (non-owning), checkpointed per
  /// interpreted statement like the Graph.js phases — the harness runs both
  /// tools under the same per-package deadline. On expiry the analysis
  /// aborts with TimedOut set (and, per ODGen's all-or-nothing behavior,
  /// no findings).
  Deadline *ScanDeadline = nullptr;
  queries::SinkConfig Sinks = queries::SinkConfig::defaults();
};

struct ODGenResult {
  std::vector<queries::VulnReport> Reports;
  bool ParseFailed = false;
  bool TimedOut = false;
  size_t NumNodes = 0; ///< CPG+ODG nodes.
  size_t NumEdges = 0;
  uint64_t Work = 0;
  double GraphSeconds = 0;
  double QuerySeconds = 0;
};

/// The baseline analyzer.
class ODGenAnalyzer {
public:
  explicit ODGenAnalyzer(ODGenOptions Options = {});

  /// Analyzes one JavaScript source buffer.
  ODGenResult analyze(const std::string &Source);

  /// Analyzes an already-normalized program.
  ODGenResult analyzeProgram(const core::Program &Program,
                             bool HasServerContext);

private:
  ODGenOptions Options;
};

} // namespace odgen
} // namespace gjs

#endif // GJS_ODGEN_ODGENANALYZER_H
