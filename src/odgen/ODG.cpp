//===- odgen/ODG.cpp - Object Dependence Graph (baseline) ------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "odgen/ODG.h"

#include <cassert>

using namespace gjs;
using namespace gjs::odgen;

ODGNodeId ODG::addNode(ODGNodeKind Kind, SourceLocation Loc,
                       std::string Label) {
  ODGNodeId Id = static_cast<ODGNodeId>(Nodes.size());
  ODGNode N;
  N.Kind = Kind;
  N.Loc = Loc;
  N.Label = std::move(Label);
  Nodes.push_back(std::move(N));
  Out.emplace_back();
  return Id;
}

void ODG::addEdge(ODGNodeId From, ODGNodeId To, ODGEdgeKind Kind,
                  std::string Name) {
  if (From >= Nodes.size() || To >= Nodes.size())
    return; // Reject bad endpoints instead of corrupting the edge list.
  uint32_t E = static_cast<uint32_t>(Edges.size());
  Edges.push_back({From, To, Kind, std::move(Name)});
  Out[From].push_back(E);
}
