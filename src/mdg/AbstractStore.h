//===- mdg/AbstractStore.h - Abstract variable store -------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract variable store ρ̂ : X → ℘(L̂) of §3.2: maps program
/// variables to sets of abstract locations. Stores form a lattice under
/// pointwise subset inclusion; the analysis joins stores at if-statement
/// merge points and iterates while-loop bodies until the (graph, store)
/// pair stabilizes.
///
/// The store only keeps the *newest* versions of the objects a variable
/// points to; when NV creates a new version, every binding of the old
/// location is rewritten to the new one (§2.2, line 5 discussion).
///
//===----------------------------------------------------------------------===//

#ifndef GJS_MDG_ABSTRACTSTORE_H
#define GJS_MDG_ABSTRACTSTORE_H

#include "mdg/MDG.h"

#include <map>
#include <set>
#include <string>

namespace gjs {
namespace mdg {

/// ρ̂ : Var → ℘(NodeId), a finite-lattice abstract store.
class AbstractStore {
public:
  using LocSet = std::set<NodeId>;

  const LocSet &get(const std::string &Var) const {
    static const LocSet Empty;
    auto It = Vars.find(Var);
    return It == Vars.end() ? Empty : It->second;
  }

  bool contains(const std::string &Var) const { return Vars.count(Var) != 0; }

  /// Strong update: x ↦ Locs (assignment rebinds the variable).
  void set(const std::string &Var, LocSet Locs) {
    Vars[Var] = std::move(Locs);
  }
  void set(const std::string &Var, NodeId L) { Vars[Var] = {L}; }

  /// Weak update: x ↦ ρ̂(x) ∪ Locs. Returns true if the binding grew.
  bool join(const std::string &Var, const LocSet &Locs) {
    LocSet &Cur = Vars[Var];
    size_t Before = Cur.size();
    Cur.insert(Locs.begin(), Locs.end());
    return Cur.size() != Before;
  }

  /// ρ̂1 ⊔ ρ̂2 merged into this store. Returns true if anything grew.
  bool joinWith(const AbstractStore &Other) {
    bool Changed = false;
    for (const auto &[Var, Locs] : Other.Vars)
      Changed |= join(Var, Locs);
    return Changed;
  }

  /// ρ̂1 ⊑ ρ̂2: pointwise subset.
  static bool leq(const AbstractStore &S1, const AbstractStore &S2) {
    for (const auto &[Var, Locs] : S1.Vars) {
      const LocSet &Other = S2.get(Var);
      for (NodeId L : Locs)
        if (!Other.count(L))
          return false;
    }
    return true;
  }

  /// Replaces every occurrence of \p OldLoc with \p NewLoc — the version
  /// rewrite performed by NV/NV*.
  void replaceEverywhere(NodeId OldLoc, NodeId NewLoc) {
    for (auto &[Var, Locs] : Vars) {
      if (Locs.erase(OldLoc))
        Locs.insert(NewLoc);
    }
  }

  const std::map<std::string, LocSet> &bindings() const { return Vars; }

  bool operator==(const AbstractStore &O) const { return Vars == O.Vars; }

private:
  std::map<std::string, LocSet> Vars;
};

} // namespace mdg
} // namespace gjs

#endif // GJS_MDG_ABSTRACTSTORE_H
