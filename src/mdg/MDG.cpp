//===- mdg/MDG.cpp - Multiversion Dependency Graph -------------------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "mdg/MDG.h"

#include "obs/Counters.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>

using namespace gjs;
using namespace gjs::mdg;

std::string mdg::edgeKindLabel(EdgeKind K) {
  switch (K) {
  case EdgeKind::Dep:
    return "D";
  case EdgeKind::Prop:
    return "P";
  case EdgeKind::PropUnknown:
    return "P(*)";
  case EdgeKind::Version:
    return "V";
  case EdgeKind::VersionUnknown:
    return "V(*)";
  }
  return "?";
}

NodeId Graph::addNode(NodeKind Kind, uint32_t Site, SourceLocation Loc,
                      std::string Label) {
  NodeId Id = static_cast<NodeId>(Nodes.size());
  Node N;
  N.Kind = Kind;
  N.Site = Site;
  N.Loc = Loc;
  N.Label = std::move(Label);
  Nodes.push_back(std::move(N));
  OutEdges.emplace_back();
  InEdges.emplace_back();
  ++Revision;
  obs::counters::MdgNodes.add();
  return Id;
}

/// The per-kind edge counter (build.mdg_edges_*).
static obs::Counter &edgeCounterOf(EdgeKind K) {
  switch (K) {
  case EdgeKind::Dep:
    return obs::counters::MdgEdgeD;
  case EdgeKind::Prop:
    return obs::counters::MdgEdgeP;
  case EdgeKind::PropUnknown:
    return obs::counters::MdgEdgePU;
  case EdgeKind::Version:
    return obs::counters::MdgEdgeV;
  case EdgeKind::VersionUnknown:
    return obs::counters::MdgEdgeVU;
  }
  return obs::counters::MdgEdgeD;
}

bool Graph::addEdge(NodeId From, NodeId To, EdgeKind Kind, Symbol Prop) {
  if (From >= Nodes.size() || To >= Nodes.size())
    return false; // Out-of-range endpoint: reject rather than corrupt.
  Edge E{From, To, Kind, Prop};
  if (!EdgeSet.insert(E).second)
    return false;
  OutEdges[From].push_back(E);
  InEdges[To].push_back(E);
  ++NumEdgesTotal;
  ++Revision;
  edgeCounterOf(Kind).add();
  return true;
}

bool Graph::hasEdge(NodeId From, NodeId To, EdgeKind Kind, Symbol Prop) const {
  return EdgeSet.count(Edge{From, To, Kind, Prop}) != 0;
}

std::vector<NodeId> Graph::nodeIds() const {
  std::vector<NodeId> Ids(Nodes.size());
  for (size_t I = 0; I < Nodes.size(); ++I)
    Ids[I] = static_cast<NodeId>(I);
  return Ids;
}

std::vector<NodeId> Graph::versionAncestors(NodeId L) const {
  std::vector<NodeId> Chain;
  std::vector<bool> Seen(Nodes.size(), false);
  std::deque<NodeId> Work{L};
  Seen[L] = true;
  while (!Work.empty()) {
    NodeId N = Work.front();
    Work.pop_front();
    Chain.push_back(N);
    for (const Edge &E : InEdges[N]) {
      if (E.Kind != EdgeKind::Version && E.Kind != EdgeKind::VersionUnknown)
        continue;
      if (!Seen[E.From]) {
        Seen[E.From] = true;
        Work.push_back(E.From);
      }
    }
  }
  return Chain;
}

std::vector<NodeId> Graph::oldestVersions(NodeId L) const {
  std::vector<NodeId> Oldest;
  for (NodeId N : versionAncestors(L)) {
    bool HasVersionParent = false;
    for (const Edge &E : InEdges[N])
      if (E.Kind == EdgeKind::Version || E.Kind == EdgeKind::VersionUnknown)
        HasVersionParent = true;
    if (!HasVersionParent)
      Oldest.push_back(N);
  }
  return Oldest;
}

bool Graph::isVersionAncestor(NodeId Anc, NodeId N) const {
  if (Anc == N)
    return false;
  for (NodeId A : versionAncestors(N))
    if (A == Anc)
      return true;
  return false;
}

std::vector<NodeId> Graph::propTargets(NodeId L, Symbol P) const {
  std::vector<NodeId> Out;
  for (const Edge &E : OutEdges[L])
    if (E.Kind == EdgeKind::Prop && E.Prop == P)
      Out.push_back(E.To);
  return Out;
}

std::vector<NodeId> Graph::unknownPropTargets(NodeId L) const {
  std::vector<NodeId> Out;
  for (const Edge &E : OutEdges[L])
    if (E.Kind == EdgeKind::PropUnknown)
      Out.push_back(E.To);
  return Out;
}

std::vector<NodeId> Graph::resolveProperty(NodeId L, Symbol P) const {
  std::vector<NodeId> Chain = versionAncestors(L);

  // Owners: versions in the chain that define P(p) directly.
  std::vector<NodeId> Owners;
  for (NodeId N : Chain)
    if (!propTargets(N, P).empty())
      Owners.push_back(N);
  if (Owners.empty())
    return {};

  // Maximal owners: those not shadowed by a newer owner in the chain.
  std::vector<NodeId> Maximal;
  for (NodeId A : Owners) {
    bool Shadowed = false;
    for (NodeId B : Owners)
      if (B != A && isVersionAncestor(A, B))
        Shadowed = true;
    if (!Shadowed)
      Maximal.push_back(A);
  }

  std::vector<NodeId> Result;
  auto Push = [&](NodeId N) {
    if (std::find(Result.begin(), Result.end(), N) == Result.end())
      Result.push_back(N);
  };
  for (NodeId A : Maximal)
    for (NodeId T : propTargets(A, P))
      Push(T);

  // P(*) edges on versions strictly newer than a maximal owner may have
  // overwritten p (Fig. 1, line 7: o4 joins o9 in the result).
  for (NodeId N : Chain) {
    if (unknownPropTargets(N).empty())
      continue;
    for (NodeId A : Maximal) {
      if (isVersionAncestor(A, N)) {
        for (NodeId T : unknownPropTargets(N))
          Push(T);
        break;
      }
    }
  }
  return Result;
}

std::vector<NodeId> Graph::resolveUnknownProperty(NodeId L) const {
  std::vector<NodeId> Result;
  auto Push = [&](NodeId N) {
    if (std::find(Result.begin(), Result.end(), N) == Result.end())
      Result.push_back(N);
  };
  for (NodeId N : versionAncestors(L)) {
    for (const Edge &E : OutEdges[N])
      if (E.Kind == EdgeKind::PropUnknown || E.Kind == EdgeKind::Prop)
        Push(E.To);
  }
  return Result;
}

bool Graph::leq(const Graph &G1, const Graph &G2) {
  if (G1.NumEdgesTotal > G2.NumEdgesTotal)
    return false;
  for (const Edge &E : G1.EdgeSet)
    if (!G2.EdgeSet.count(E))
      return false;
  return true;
}

std::string Graph::dump(const StringInterner &Names) const {
  std::ostringstream OS;
  for (size_t I = 0; I < Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    OS << "o" << I << " [" << (N.Kind == NodeKind::Call ? "call " : "")
       << N.Label;
    if (N.IsTaintSource)
      OS << " taint-source";
    OS << "]\n";
    for (const Edge &E : OutEdges[I]) {
      OS << "  o" << E.From << " -";
      switch (E.Kind) {
      case EdgeKind::Dep:
        OS << "D";
        break;
      case EdgeKind::Prop:
        OS << "P(" << Names.str(E.Prop) << ")";
        break;
      case EdgeKind::PropUnknown:
        OS << "P(*)";
        break;
      case EdgeKind::Version:
        OS << "V(" << Names.str(E.Prop) << ")";
        break;
      case EdgeKind::VersionUnknown:
        OS << "V(*)";
        break;
      }
      OS << "-> o" << E.To << "\n";
    }
  }
  return OS.str();
}

std::string Graph::toDot(const StringInterner &Names) const {
  std::ostringstream OS;
  OS << "digraph MDG {\n  rankdir=LR;\n  node [fontsize=10];\n";
  for (size_t I = 0; I < Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    OS << "  o" << I << " [label=\"o" << I;
    if (!N.Label.empty())
      OS << "\\n" << N.Label;
    OS << "\"";
    if (N.Kind == NodeKind::Call)
      OS << ", shape=box";
    if (N.IsTaintSource)
      OS << ", style=filled, fillcolor=lightcoral";
    OS << "];\n";
  }
  for (size_t I = 0; I < Nodes.size(); ++I) {
    for (const Edge &E : OutEdges[I]) {
      OS << "  o" << E.From << " -> o" << E.To << " [label=\"";
      switch (E.Kind) {
      case EdgeKind::Dep:
        OS << "D";
        break;
      case EdgeKind::Prop:
        OS << "P(" << Names.str(E.Prop) << ")";
        break;
      case EdgeKind::PropUnknown:
        OS << "P(*)";
        break;
      case EdgeKind::Version:
        OS << "V(" << Names.str(E.Prop) << ")";
        break;
      case EdgeKind::VersionUnknown:
        OS << "V(*)";
        break;
      }
      OS << "\"";
      if (E.Kind == EdgeKind::Version || E.Kind == EdgeKind::VersionUnknown)
        OS << ", style=dashed";
      OS << "];\n";
    }
  }
  OS << "}\n";
  return OS.str();
}

Graph Graph::collapseVersions() const {
  // Representative of each node: the smallest-id terminal node of its
  // forward version closure (terminal = no outgoing V edge; cycles from
  // the site-reuse allocator fall back to the whole closure).
  std::vector<NodeId> Rep(Nodes.size());
  for (NodeId N = 0; N < Nodes.size(); ++N) {
    std::vector<bool> Seen(Nodes.size(), false);
    std::vector<NodeId> Work{N}, Closure;
    Seen[N] = true;
    while (!Work.empty()) {
      NodeId Cur = Work.back();
      Work.pop_back();
      Closure.push_back(Cur);
      for (const Edge &E : OutEdges[Cur]) {
        if (E.Kind != EdgeKind::Version &&
            E.Kind != EdgeKind::VersionUnknown)
          continue;
        if (!Seen[E.To]) {
          Seen[E.To] = true;
          Work.push_back(E.To);
        }
      }
    }
    NodeId Best = InvalidNode;
    for (NodeId C : Closure) {
      bool Terminal = true;
      for (const Edge &E : OutEdges[C])
        if (E.Kind == EdgeKind::Version || E.Kind == EdgeKind::VersionUnknown)
          Terminal = false;
      if (Terminal && (Best == InvalidNode || C < Best))
        Best = C;
    }
    if (Best == InvalidNode)
      for (NodeId C : Closure)
        if (Best == InvalidNode || C < Best)
          Best = C;
    Rep[N] = Best;
  }

  // Build the collapsed graph: representatives keep their metadata.
  Graph Out;
  std::vector<NodeId> NewId(Nodes.size(), InvalidNode);
  for (NodeId N = 0; N < Nodes.size(); ++N) {
    if (Rep[N] != N)
      continue;
    NewId[N] = Out.addNode(Nodes[N].Kind, Nodes[N].Site, Nodes[N].Loc,
                           Nodes[N].Label);
    Node &Copy = Out.node(NewId[N]);
    Copy.IsTaintSource = Nodes[N].IsTaintSource;
    Copy.CallName = Nodes[N].CallName;
    Copy.CallPath = Nodes[N].CallPath;
  }
  // Merged members propagate taint onto their representative.
  for (NodeId N = 0; N < Nodes.size(); ++N)
    if (Nodes[N].IsTaintSource)
      Out.node(NewId[Rep[N]]).IsTaintSource = true;

  for (NodeId N = 0; N < Nodes.size(); ++N) {
    for (const Edge &E : OutEdges[N]) {
      if (E.Kind == EdgeKind::Version || E.Kind == EdgeKind::VersionUnknown)
        continue; // Version structure is what collapsing removes.
      if (E.Kind == EdgeKind::Prop) {
        // Newest-wins shadowing: drop a P(p) whose owner has a strictly
        // newer owner of the same p in the same chain.
        bool Shadowed = false;
        for (NodeId M = 0; M < Nodes.size(); ++M) {
          if (M == E.From || Rep[M] != Rep[E.From])
            continue;
          if (!isVersionAncestor(E.From, M))
            continue;
          for (const Edge &E2 : OutEdges[M])
            if (E2.Kind == EdgeKind::Prop && E2.Prop == E.Prop)
              Shadowed = true;
        }
        if (Shadowed)
          continue;
      }
      NodeId From = NewId[Rep[E.From]];
      NodeId To = NewId[Rep[E.To]];
      if (From != To || E.Kind != EdgeKind::Dep)
        Out.addEdge(From, To, E.Kind, E.Prop);
    }
  }
  return Out;
}
