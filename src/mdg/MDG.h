//===- mdg/MDG.h - Multiversion Dependency Graph ------------------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Multiversion Dependency Graph (§3.1): nodes are abstract locations
/// (objects/values) and function calls; edges are labeled
///
///   τ ::= D | P(p) | P(*) | V(p) | V(*)
///
/// Dependency edges `l1 →D l2` mean l2 is computed from l1. Property edges
/// `obj →P(p) val` mean the object has property p holding val (P(*) when
/// the name is dynamic). Version edges `old →V(p) new` mean `new` is a
/// fresh version of `old` created by an update of p (V(*) when dynamic).
///
/// The same class also represents *concrete* MDGs (§3.3): the concrete
/// instrumented semantics simply never emits unknown-property edges and
/// keeps at most one P(p) target per (node, p).
///
/// MDGs form a lattice under edge-set inclusion; the analysis only ever
/// adds nodes and edges, so joins are implicit and `leq` is subset.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_MDG_MDG_H
#define GJS_MDG_MDG_H

#include "support/SourceLocation.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gjs {
namespace mdg {

/// Dense id of an abstract location / call node.
using NodeId = uint32_t;
constexpr NodeId InvalidNode = static_cast<NodeId>(-1);

enum class EdgeKind : uint8_t {
  Dep,            ///< D
  Prop,           ///< P(p), Prop carries the property symbol
  PropUnknown,    ///< P(*)
  Version,        ///< V(p)
  VersionUnknown, ///< V(*)
};

/// Renders an edge label like "D", "P(cmd)", "V(*)".
std::string edgeKindLabel(EdgeKind K);

struct Edge {
  NodeId From = InvalidNode;
  NodeId To = InvalidNode;
  EdgeKind Kind = EdgeKind::Dep;
  Symbol Prop = 0; ///< Interned property name for Prop/Version edges.

  bool operator==(const Edge &O) const = default;
};

enum class NodeKind : uint8_t {
  Object, ///< An object or primitive value computed by the program.
  Call,   ///< A function call f_i.
};

/// One MDG node. CallName/CallPath are set for call nodes; Args holds the
/// argument locations per position (the Arg_{f,n} traversal of Table 1).
struct Node {
  NodeKind Kind = NodeKind::Object;
  /// Allocation site (Core IR statement index); 0 for synthetic nodes.
  uint32_t Site = 0;
  /// Source line of the statement that created the node (sink reporting).
  SourceLocation Loc;
  /// Debug label, e.g. the variable name(s) that pointed here.
  std::string Label;
  /// True for parameters of exported functions — the taint sources.
  bool IsTaintSource = false;
  /// Call-node metadata.
  std::string CallName; ///< e.g. "exec"
  std::string CallPath; ///< e.g. "child_process.exec"
  std::vector<std::vector<NodeId>> Args;
};

/// The Multiversion Dependency Graph.
class Graph {
public:
  Graph() = default;

  //===--------------------------------------------------------------------===//
  // Construction
  //===--------------------------------------------------------------------===//

  NodeId addNode(NodeKind Kind, uint32_t Site, SourceLocation Loc,
                 std::string Label = "");

  /// Adds an edge if not already present. Returns true when the graph grew
  /// (drives the fixpoint tests in while/recursion analysis). Out-of-range
  /// endpoints are rejected (returns false); the MDG checker lint pass
  /// diagnoses any that slip through construction.
  bool addEdge(NodeId From, NodeId To, EdgeKind Kind, Symbol Prop = 0);

  bool hasEdge(NodeId From, NodeId To, EdgeKind Kind, Symbol Prop = 0) const;

  //===--------------------------------------------------------------------===//
  // Access
  //===--------------------------------------------------------------------===//

  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const { return NumEdgesTotal; }

  Node &node(NodeId Id) { return Nodes[Id]; }
  const Node &node(NodeId Id) const { return Nodes[Id]; }

  const std::vector<Edge> &out(NodeId Id) const { return OutEdges[Id]; }
  const std::vector<Edge> &in(NodeId Id) const { return InEdges[Id]; }

  /// All node ids, in allocation order.
  std::vector<NodeId> nodeIds() const;

  /// Monotone-growth revision counter: bumped on every new node or edge.
  /// Fixpoint loops compare revisions instead of whole graphs.
  uint64_t revision() const { return Revision; }

  //===--------------------------------------------------------------------===//
  // Version-chain and property resolution (ĝ[l, p], §3.1)
  //===--------------------------------------------------------------------===//

  /// All versions reachable backwards through V edges, including \p L.
  std::vector<NodeId> versionAncestors(NodeId L) const;

  /// The oldest version(s) of \p L (no incoming V edge within the chain).
  std::vector<NodeId> oldestVersions(NodeId L) const;

  /// True if \p Anc is a strict version ancestor of \p N.
  bool isVersionAncestor(NodeId Anc, NodeId N) const;

  /// Direct P(p) targets of \p L.
  std::vector<NodeId> propTargets(NodeId L, Symbol P) const;
  /// Direct P(*) targets of \p L.
  std::vector<NodeId> unknownPropTargets(NodeId L) const;

  /// Resolves ĝ[L, p]: the set of locations property \p P of \p L may hold.
  /// Walks the version chain: the newest version(s) defining P(p)
  /// contribute their targets, and P(*) edges on strictly newer versions
  /// contribute theirs (they may have overwritten p). Returns empty when no
  /// version defines the property (the analysis then lazily creates it).
  std::vector<NodeId> resolveProperty(NodeId L, Symbol P) const;

  /// Resolves a dynamic lookup ĝ[L, *]: all P(*) targets plus all known
  /// property targets across the version chain (a dynamic name may alias
  /// any property).
  std::vector<NodeId> resolveUnknownProperty(NodeId L) const;

  //===--------------------------------------------------------------------===//
  // Lattice and diagnostics
  //===--------------------------------------------------------------------===//

  /// Subset inclusion on edges (ĝ1 ⊑ ĝ2). Node ids must be comparable,
  /// i.e. both graphs built by the same (deterministic) allocator.
  static bool leq(const Graph &G1, const Graph &G2);

  /// Human-readable dump: one line per edge.
  std::string dump(const StringInterner &Names) const;

  /// GraphViz dot rendering (the Figure 1c / Figure 9 pictures): objects
  /// as ellipses, calls as boxes, taint sources shaded, edges labeled
  /// with their τ (version edges dashed).
  std::string toDot(const StringInterner &Names) const;

  /// The §6 discussion's "collapsing the multiversion graph to include
  /// only the latest version would yield the regular object graph":
  /// merges every version chain into its newest version(s), redirecting
  /// D/P edges onto the representatives and dropping V edges. Property
  /// edges keep newest-wins shadowing (a P(p) from an older version is
  /// dropped when a newer version redefines p). Useful for rendering and
  /// for comparing against classic object-graph analyses.
  Graph collapseVersions() const;

private:
  std::vector<Node> Nodes;
  std::vector<std::vector<Edge>> OutEdges;
  std::vector<std::vector<Edge>> InEdges;

  struct EdgeHash {
    size_t operator()(const Edge &E) const {
      uint64_t H = (static_cast<uint64_t>(E.From) << 32) ^ E.To;
      H = H * 1099511628211ULL ^ static_cast<uint64_t>(E.Kind);
      H = H * 1099511628211ULL ^ E.Prop;
      return static_cast<size_t>(H);
    }
  };
  std::unordered_set<Edge, EdgeHash> EdgeSet;
  size_t NumEdgesTotal = 0;
  uint64_t Revision = 0;
};

} // namespace mdg
} // namespace gjs

#endif // GJS_MDG_MDG_H
