//===- analysis/MDGBuilder.h - Abstract MDG construction ---------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: the abstract analysis
/// A(s, ĝ, ρ̂) = (ĝ', ρ̂') of §3.2 that builds a Multiversion Dependency
/// Graph from a Core JavaScript program by forward abstract execution.
///
/// Key properties implemented here:
///
///  - **Allocation-site abstraction**: alloc(i, ĝ) always returns the same
///    abstract location for the same statement index i, so objects created
///    in loops reuse one node — no object explosion, MDGs grow linearly in
///    LoC (§5.4, Table 7).
///
///  - **Versioning (NV/NV*)**: property updates create new versions linked
///    by V(p)/V(*) edges, rewriting all store bindings of the old version.
///    Version allocation is memoized on (statement, old version), which is
///    what makes loop bodies reach a fixpoint (the §5.5 case study).
///
///  - **Lazy properties (AP/AP*)**: property lookups materialize P(p)/P(*)
///    edges on demand — known properties on the *oldest* version ("it
///    existed from the beginning", Fig. 1 line 7), unknown properties on
///    the looked-up version with D edges from the dynamic name's locations.
///
///  - **Summary fixpoints** for while loops and recursive calls: the body
///    is re-analyzed until the (graph revision, store) pair stabilizes.
///
///  - **Bounded interprocedural inlining** with per-call-site call nodes:
///    every call allocates a call node f_i with D edges from every argument
///    location (the sink anchors of the Table 2 queries); calls to known
///    functions additionally analyze the callee with parameters bound.
///
/// A work budget models the paper's 5-minute analysis timeout.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_ANALYSIS_MDGBUILDER_H
#define GJS_ANALYSIS_MDGBUILDER_H

#include "core/CoreIR.h"
#include "mdg/AbstractStore.h"
#include "mdg/MDG.h"
#include "support/StringInterner.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace gjs {

class Deadline;

namespace analysis {

/// Tuning knobs for the analysis.
struct BuilderOptions {
  /// Maximum interprocedural inlining depth.
  unsigned MaxInlineDepth = 6;
  /// Safety cap on fixpoint iterations for loops/recursion.
  unsigned MaxFixpointIters = 64;
  /// Abstract work budget (statements analyzed); 0 = unlimited. Models the
  /// evaluation's per-package timeout.
  uint64_t WorkBudget = 0;
  /// Optional scan-level cancellation token (non-owning): the per-package
  /// deadline shared by every pipeline phase. Checkpointed once per
  /// abstract statement; on expiry the build aborts with the partial graph
  /// (BuildResult::TimedOut is set, as for WorkBudget exhaustion).
  Deadline *ScanDeadline = nullptr;
  /// Treat every top-level function as an entry point when the module has
  /// no recognizable exports.
  bool FallbackAllFunctionsExported = true;
  /// The paper's "single node per allocation site" rule for versions
  /// (§3.2/§5.5). Disabling it keys versions by (site, old version) —
  /// the ablation that reintroduces version-chain growth in loops.
  bool SiteVersionReuse = true;
  /// User-declared sanitizer functions (§6): calls whose syntactic name
  /// or dotted path appears here are taint barriers — their results carry
  /// no dependencies, and known callees are not inlined. This is a
  /// user-supplied unsoundness, as in every taint tool.
  std::set<std::string> Sanitizers;
};

/// The abstraction function α's backing tables: how abstract locations were
/// allocated. The concrete interpreter tags its locations with the same
/// keys, so the soundness property tests (Thm 3.2 / Def 3.1) can map every
/// concrete location to its abstract counterpart deterministically.
struct AllocationTables {
  std::map<core::StmtIndex, mdg::NodeId> Site;        ///< {}_i, ⊕_i, fn_i
  std::map<core::StmtIndex, mdg::NodeId> Version;     ///< NV/NV* results
  std::map<core::StmtIndex, mdg::NodeId> Value;       ///< literal RHS values
  std::map<std::pair<core::StmtIndex, Symbol>, mdg::NodeId> Prop; ///< AP
  std::map<core::StmtIndex, mdg::NodeId> UnknownProp; ///< AP*
  std::map<core::StmtIndex, mdg::NodeId> Call;        ///< f_i
  std::map<core::StmtIndex, mdg::NodeId> Ret;         ///< unknown-call results
  std::map<std::string, mdg::NodeId> Global;          ///< unbound variables
  std::map<std::string, mdg::NodeId> Param;           ///< "fn:param"
};

/// The constructed MDG plus the side tables queries need.
struct BuildResult {
  mdg::Graph Graph;
  /// Interner for property names referenced by edges.
  StringInterner Props;
  /// Parameter nodes of exported functions — the taint sources.
  std::vector<mdg::NodeId> TaintSources;
  /// All call nodes, in creation order.
  std::vector<mdg::NodeId> CallNodes;
  /// True when the work budget was exhausted before completion.
  bool TimedOut = false;
  /// Abstract statements processed (analysis effort metric).
  uint64_t WorkDone = 0;
  /// Allocation tables backing the abstraction function α.
  AllocationTables Alloc;
  /// Function-definition nodes by core function name (call-graph lint
  /// cross-checks resolved edges against these live MDG nodes).
  std::map<std::string, mdg::NodeId> FunctionNodes;
};

struct ModuleLinkInfo; // CallGraph.h

/// One module of a multi-file package, for linked analysis.
struct PackageModule {
  std::string Name; ///< File name, e.g. "helpers.js".
  const core::Program *Program = nullptr;
  /// Owning package for dependency-tree scans ("" = the sole package).
  std::string Pkg;
  /// True for a package's main module: a bare `require('pkg')` from any
  /// other package resolves to this module's exports object.
  bool IsMain = false;
};

/// Builds the MDG of a normalized Core JavaScript program.
class MDGBuilder {
public:
  explicit MDGBuilder(BuilderOptions Options = {});

  BuildResult build(const core::Program &Program);

  /// Package-level linked analysis: every module's top level is analyzed
  /// into ONE shared graph; a `require('./helpers')` resolves to the
  /// exports object of helpers.js (an Object node with P(name) edges to
  /// the exported function values), so taint flows across files. Modules
  /// should be ordered dependencies-first (the scanner topo-sorts); an
  /// unresolved require degrades to the single-file fresh-object
  /// behavior. Entry points are the union of all modules' exports.
  ///
  /// With \p Link (a flattened dependency tree, see PackageGraph), exports
  /// objects are registered under package-qualified keys: a bare require
  /// resolves to the named package's main module, a relative require stays
  /// within the requiring module's own package, and names in
  /// Link->ForceUnresolved keep the fresh-object degradation (the
  /// cross-package soundness valve).
  BuildResult buildPackage(const std::vector<PackageModule> &Modules,
                           const ModuleLinkInfo *Link = nullptr);

private:
  BuilderOptions Options;
  const core::Program *Prog = nullptr;
  BuildResult *Result = nullptr;
  mdg::Graph *G = nullptr;
  mdg::AbstractStore Store;

  //===--------------------------------------------------------------------===//
  // Memoized allocators (the alloc(i, ĝ) of [NEW OBJECT])
  //===--------------------------------------------------------------------===//

  std::map<core::StmtIndex, mdg::NodeId> SiteAlloc;
  /// One version node per update site — the paper's "single node per
  /// allocation site" rule, which is what bounds the graph and lets loop
  /// analysis reach a fixpoint (§5.5's cyclic representation).
  std::map<core::StmtIndex, mdg::NodeId> VersionAlloc;
  /// Ablated allocator (SiteVersionReuse = false): versions keyed by
  /// (site, old version) — chains grow per loop iteration.
  std::map<std::pair<core::StmtIndex, mdg::NodeId>, mdg::NodeId>
      VersionAllocAblated;
  /// Fresh value nodes for literal RHSs of updates (Fig. 1 line 6's o8).
  std::map<core::StmtIndex, mdg::NodeId> ValueAlloc;
  /// Lazily-created property nodes, keyed by *lookup site* (not by owner):
  /// `obj = obj.next` / `obj = obj[p]` in a loop must fold back onto one
  /// node per site or the abstract object tree grows without bound.
  std::map<std::pair<core::StmtIndex, Symbol>, mdg::NodeId> PropAlloc;
  std::map<core::StmtIndex, mdg::NodeId> UnknownPropAlloc;
  std::map<core::StmtIndex, mdg::NodeId> CallAlloc;
  std::map<core::StmtIndex, mdg::NodeId> RetAlloc;
  std::map<std::string, mdg::NodeId> GlobalAlloc;
  std::map<std::string, mdg::NodeId> ParamAlloc; // key: "fn:param"

  /// Function value node -> core function (call resolution).
  std::map<mdg::NodeId, const core::Function *> FuncOfNode;
  /// Core function name -> its function-value node (export linking).
  std::map<std::string, mdg::NodeId> FuncNodeByName;
  /// Normalized module stem -> exports object node (package linking).
  /// Dependency-tree builds use package-qualified keys instead (see
  /// exportKey in MDGBuilder.cpp) so same-stem files in two packages
  /// cannot cross-link.
  std::map<std::string, mdg::NodeId> ModuleExports;
  /// Cross-package link context (null outside dependency-tree builds).
  const ModuleLinkInfo *PkgLink = nullptr;
  /// Package owning the module currently being analyzed.
  std::string CurPkg;

  /// Resolves a require target to a registered exports object, honoring
  /// the package-qualified key scheme and the ForceUnresolved valve.
  /// Returns mdg::InvalidNode when the require must stay unresolved.
  mdg::NodeId lookupModuleExports(const std::string &RequireModule);

  /// Inline stack (function names) for recursion detection.
  std::vector<std::string> InlineStack;
  /// Return-location summaries per function (grow monotonically).
  std::map<std::string, std::set<mdg::NodeId>> ReturnSummaries;
  /// Name of the function whose body is being analyzed (return binding).
  std::vector<std::string> CurrentFunction;

  uint64_t Work = 0;
  bool Aborted = false;

  //===--------------------------------------------------------------------===//
  // Core analysis
  //===--------------------------------------------------------------------===//

  void analyzeBlock(const std::vector<core::StmtPtr> &Block);
  void analyzeStmt(const core::Stmt &S);

  void analyzeCall(const core::Stmt &S);
  void analyzeFunctionInline(const core::Function &Fn,
                             const std::vector<std::set<mdg::NodeId>> &ArgLocs,
                             const std::set<mdg::NodeId> &ReceiverLocs);

  /// Models well-known builtins with dedicated summaries instead of the
  /// generic unknown-call treatment: `Object.assign` (a merge — the
  /// classic pollution vector), `Object.create`/`freeze` (passthrough),
  /// and the mutating array methods (`push`/`unshift`/`fill`/`splice`).
  /// Returns true when the call was fully handled (target bound).
  bool tryBuiltinCall(const core::Stmt &S, mdg::NodeId CallNode,
                      const std::vector<std::set<mdg::NodeId>> &ArgLocs,
                      const std::set<mdg::NodeId> &ReceiverLocs);

  /// Runs \p Body to a (graph, store) fixpoint.
  void fixpoint(const std::vector<core::StmtPtr> &Body);

  //===--------------------------------------------------------------------===//
  // Helpers
  //===--------------------------------------------------------------------===//

  /// Locations of an operand. Unbound variables are bound to fresh global
  /// object nodes; literals evaluate to the empty set.
  std::set<mdg::NodeId> eval(const core::Operand &O);
  /// Like eval, but guarantees a nonempty result by allocating a fresh
  /// value node at \p Site for literal operands.
  std::set<mdg::NodeId> evalValue(const core::Operand &O,
                                  core::StmtIndex Site, SourceLocation Loc);

  mdg::NodeId allocAtSite(core::StmtIndex Site, SourceLocation Loc,
                          const std::string &Label);

  /// ĝ[l, p] with lazy AP on the oldest version when undefined.
  std::set<mdg::NodeId> ensureProperty(mdg::NodeId L, Symbol P,
                                       core::StmtIndex Site,
                                       SourceLocation Loc);
  /// AP*: ensures an unknown-property node on \p L, wiring D edges from the
  /// dynamic name's locations, then resolves across the version chain.
  std::set<mdg::NodeId> ensureUnknownProperty(
      mdg::NodeId L, const std::set<mdg::NodeId> &NameLocs,
      core::StmtIndex Site, SourceLocation Loc);

  /// NV / NV*: creates new versions of every location in \p Objs due to an
  /// update of property \p P (or an unknown property when IsUnknown), and
  /// rewrites the store. Returns the new version for each input location.
  std::vector<mdg::NodeId> newVersions(const std::set<mdg::NodeId> &Objs,
                                       core::StmtIndex Site, Symbol P,
                                       bool IsUnknown,
                                       const std::set<mdg::NodeId> &NameLocs,
                                       SourceLocation Loc);

  bool budgetExceeded();
  void markEntryPoints();
  void finalize(BuildResult &R);
};

/// Convenience: linked package analysis (see MDGBuilder::buildPackage).
BuildResult buildPackageMDG(const std::vector<PackageModule> &Modules,
                            BuilderOptions O = {},
                            const ModuleLinkInfo *Link = nullptr);

/// Convenience: normalize + build in one call.
BuildResult buildMDG(const core::Program &Program, BuilderOptions O = {});

} // namespace analysis
} // namespace gjs

#endif // GJS_ANALYSIS_MDGBUILDER_H
