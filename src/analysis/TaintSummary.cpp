//===- analysis/TaintSummary.cpp - Per-function taint summaries -----------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Soundness target: the pruning decision must over-approximate what the
// MDG detectors (queries::GraphDBRunner / detectNative) can report, not
// true JavaScript semantics. The key builder behaviors mirrored here:
//
//  * taint enters only through exported-function parameters
//    (markEntryPoints), so "no entry has parameters" kills everything;
//  * a taint-class report needs a call node whose name/path matches a
//    sink spec syntactically — no matching call statement anywhere
//    means no report, interprocedurally, unconditionally;
//  * a pollution report needs an unknown-version (VU*) write — a
//    dynamic property update with a variable key, Object.assign, or a
//    mutating array builtin;
//  * the builder's store is flat per module and its param/return nodes
//    are shared across call sites (context collapse), so summaries add
//    the `other` origin wherever a value could pick up taint from
//    shared state, and the decision only trusts `other`-free masks
//    unless no taint escapes into shared state at all;
//  * any reachable unresolved call that can see tainted inputs defeats
//    summary-based pruning entirely (the Unresolved fallback rule).
//
//===----------------------------------------------------------------------===//

#include "analysis/TaintSummary.h"

#include "support/JSON.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace gjs {
namespace analysis {

using core::Operand;
using core::Stmt;
using core::StmtKind;
using core::StmtPtr;

const char *sinkClassTag(int Class) {
  switch (Class) {
  case SinkClassCommandInjection:
    return "CWE-78";
  case SinkClassCodeInjection:
    return "CWE-94";
  case SinkClassPathTraversal:
    return "CWE-22";
  case SinkClassPrototypePollution:
    return "CWE-1321";
  }
  return "CWE-?";
}

std::string maskToString(OriginMask M, unsigned NumParams) {
  if (!M)
    return "{}";
  std::string Out = "{";
  bool First = true;
  unsigned Shown = std::min(NumParams, 63u);
  for (unsigned I = 0; I < Shown; ++I)
    if (M & paramBit(I)) {
      Out += (First ? "p" : ",p") + std::to_string(I);
      First = false;
    }
  if (M & OtherOrigin) {
    Out += First ? "other" : ",other";
    First = false;
  }
  // Bits beyond the declared params (composed masks): render raw.
  if (First)
    Out += "?";
  return Out + "}";
}

bool FunctionSummary::operator==(const FunctionSummary &O) const {
  for (int C = 0; C < NumSinkClasses; ++C)
    if (SinkFlow[C] != O.SinkFlow[C] || HasSinkSite[C] != O.HasSinkSite[C])
      return false;
  return Name == O.Name && NumParams == O.NumParams && RetFlow == O.RetFlow &&
         PolluteFlow == O.PolluteFlow &&
         UnresolvedArgFlow == O.UnresolvedArgFlow &&
         GlobalWriteFlow == O.GlobalWriteFlow && MutFlow == O.MutFlow &&
         HasVUSite == O.HasVUSite && CallsUnresolved == O.CallsUnresolved;
}

namespace {

bool isArrayMutator(const std::string &Name) {
  return Name == "push" || Name == "unshift" || Name == "fill" ||
         Name == "splice";
}

/// One function's flow-insensitive local analysis, re-runnable inside
/// the SCC fixpoint (reads the current summaries of callees).
class LocalAnalyzer {
public:
  LocalAnalyzer(const CallGraph &CG,
                const std::vector<const core::Program *> &Modules,
                const SinkTable &Sinks,
                const std::vector<FunctionSummary> &Sums,
                const std::map<std::pair<FuncId, core::StmtIndex>, size_t>
                    &SiteOf,
                FuncId F)
      : CG(CG), Sinks(Sinks), Sums(Sums), SiteOf(SiteOf), F(F) {
    const CGFunction &Fn = CG.functions()[F];
    Body = Fn.Fn ? &Fn.Fn->Body : &Modules[Fn.ModuleIndex]->TopLevel;
    Shared.insert(Fn.CapturedLocals.begin(), Fn.CapturedLocals.end());
    Out.Name = Fn.Name;
    if (Fn.Fn) {
      Out.NumParams = static_cast<unsigned>(Fn.Fn->Params.size());
      for (unsigned I = 0; I < Out.NumParams; ++I) {
        Params.push_back(Fn.Fn->Params[I]);
        Var[Fn.Fn->Params[I]] |= paramBit(I);
      }
    }
    Out.MutFlow.assign(Out.NumParams, 0);
    collectAssigned(*Body);
    for (const std::string &P : Params)
      Assigned.insert(P);
  }

  FunctionSummary run() {
    for (int Iter = 0; Iter < 200; ++Iter) {
      Changed = false;
      transferBlock(*Body);
      if (!Changed)
        break;
    }
    // Mutation summary: origins that flowed *into* each parameter's
    // container beyond its own seed bit. With >62 params the bits
    // collapse, so keep the full mask rather than stripping.
    for (unsigned I = 0; I < Out.NumParams; ++I) {
      OriginMask M = lookup(Params[I]);
      Out.MutFlow[I] = Out.NumParams > 62 ? M : (M & ~paramBit(I));
    }
    // Everything that ended up in shared (or non-local, write-through)
    // names is visible to other activations: module-state writes.
    for (const auto &[Name, M] : Var)
      if (Shared.count(Name) || !Assigned.count(Name))
        Out.GlobalWriteFlow |= M;
    return Out;
  }

private:
  const CallGraph &CG;
  const SinkTable &Sinks;
  const std::vector<FunctionSummary> &Sums;
  const std::map<std::pair<FuncId, core::StmtIndex>, size_t> &SiteOf;
  FuncId F;
  const std::vector<StmtPtr> *Body = nullptr;
  std::vector<std::string> Params;
  std::set<std::string> Shared, Assigned;
  std::map<std::string, OriginMask> Var;
  FunctionSummary Out;
  bool Changed = false;

  void collectAssigned(const std::vector<StmtPtr> &Block) {
    for (const StmtPtr &SP : Block) {
      const Stmt &S = *SP;
      if (!S.Target.empty())
        Assigned.insert(S.Target);
      collectAssigned(S.Then);
      collectAssigned(S.Else);
      collectAssigned(S.Body);
      // Nested function bodies are separate summary units.
    }
  }

  OriginMask lookup(const std::string &N) const {
    auto It = Var.find(N);
    return It == Var.end() ? 0 : It->second;
  }

  OriginMask read(const Operand &O) const {
    if (!O.isVar())
      return 0;
    OriginMask M = lookup(O.Name);
    // Free or shared reads can observe module/global state.
    if (!Assigned.count(O.Name) || Shared.count(O.Name))
      M |= OtherOrigin;
    return M;
  }

  void join(const std::string &N, OriginMask M) {
    if (N.empty() || !M)
      return;
    OriginMask &Slot = Var[N];
    if ((Slot | M) != Slot) {
      Slot |= M;
      Changed = true;
    }
  }
  void joinVar(const Operand &O, OriginMask M) {
    if (O.isVar())
      join(O.Name, M);
  }

  void setFlag(bool &Flag) {
    if (!Flag) {
      Flag = true;
      Changed = true;
    }
  }
  void joinMask(OriginMask &Slot, OriginMask M) {
    if ((Slot | M) != Slot) {
      Slot |= M;
      Changed = true;
    }
  }

  void transferBlock(const std::vector<StmtPtr> &Block) {
    for (const StmtPtr &SP : Block)
      transfer(*SP);
  }

  void transfer(const Stmt &S) {
    switch (S.K) {
    case StmtKind::Assign:
      join(S.Target, read(S.Value));
      // Copies alias containers: later mutations through the copy are
      // visible through the original (and vice versa).
      joinVar(S.Value, lookup(S.Target));
      break;
    case StmtKind::BinOp:
      join(S.Target, read(S.LHS) | read(S.RHS));
      break;
    case StmtKind::UnOp:
      join(S.Target, read(S.Value));
      break;
    case StmtKind::NewObject:
    case StmtKind::FuncDef:
    case StmtKind::Nop:
      break;
    case StmtKind::StaticLookup:
      join(S.Target, read(S.Obj));
      joinVar(S.Obj, lookup(S.Target)); // lookup aliases into the object
      break;
    case StmtKind::DynamicLookup:
      join(S.Target, read(S.Obj) | read(S.PropOperand));
      joinVar(S.Obj, lookup(S.Target));
      break;
    case StmtKind::StaticUpdate:
      joinVar(S.Obj, read(S.Value)); // field-insensitive container taint
      break;
    case StmtKind::DynamicUpdate:
      joinVar(S.Obj, read(S.Value) | read(S.PropOperand));
      if (S.PropOperand.isVar()) {
        setFlag(Out.HasVUSite);
        joinMask(Out.PolluteFlow,
                 read(S.Obj) | read(S.PropOperand) | read(S.Value));
      }
      break;
    case StmtKind::Call:
      transferCall(S);
      break;
    case StmtKind::Return:
      joinMask(Out.RetFlow, read(S.Value));
      break;
    case StmtKind::If:
      transferBlock(S.Then);
      transferBlock(S.Else);
      break;
    case StmtKind::While:
      transferBlock(S.Body);
      break;
    }
  }

  /// Maps a callee-side origin mask into caller-side origins through
  /// the argument vector of this call.
  OriginMask mapThroughArgs(OriginMask M, const FunctionSummary &G,
                            const Stmt &S) const {
    OriginMask Res = 0;
    if (M & OtherOrigin)
      Res |= OtherOrigin;
    for (unsigned J = 0; J < G.NumParams; ++J)
      if (M & paramBit(J))
        Res |= J < S.Args.size() ? read(S.Args[J]) : 0;
    return Res;
  }

  void transferCall(const Stmt &S) {
    OriginMask Inputs = read(S.Receiver);
    for (const Operand &A : S.Args)
      Inputs |= read(A);

    // 1. Sink sites match syntactically and their argument D edges are
    //    wired before sanitizers or builtins short-circuit, so record
    //    them first. Receiver taint alone never triggers a report.
    for (int C = 0; C < NumSinkClasses; ++C) {
      for (const SinkTableEntry &Spec : Sinks.Classes[C]) {
        bool Match = Spec.IsPath ? S.CalleePath == Spec.Name
                                 : S.CalleeName == Spec.Name;
        if (!Match)
          continue;
        setFlag(Out.HasSinkSite[C]);
        OriginMask M = 0;
        if (Spec.SensitiveArgs.empty()) {
          for (const Operand &A : S.Args)
            M |= read(A);
        } else {
          for (unsigned I : Spec.SensitiveArgs)
            if (I < S.Args.size())
              M |= read(S.Args[I]);
        }
        joinMask(Out.SinkFlow[C], M);
      }
    }

    // 2. Sanitizer barrier: fresh, dependency-free result; the builder
    //    returns before builtins and before inlining.
    if (!Sinks.Sanitizers.empty() &&
        (Sinks.Sanitizers.count(S.CalleeName) ||
         Sinks.Sanitizers.count(S.CalleePath)))
      return;

    // 3. Modeled builtins run before store-based resolution.
    if (S.CalleePath == "Object.assign" && !S.Args.empty()) {
      OriginMask Src = 0;
      for (size_t I = 1; I < S.Args.size(); ++I)
        Src |= read(S.Args[I]);
      if (S.Args.size() >= 2) {
        setFlag(Out.HasVUSite); // unknown-version merge: pollution shape
        joinMask(Out.PolluteFlow, Inputs);
      }
      joinVar(S.Args[0], Src);
      join(S.Target, read(S.Args[0]) | Src);
      return;
    }
    if (isArrayMutator(S.CalleeName) && S.Receiver.isVar() &&
        !S.Args.empty()) {
      OriginMask Vals = 0;
      for (const Operand &A : S.Args)
        Vals |= read(A);
      setFlag(Out.HasVUSite); // VU* element write
      joinMask(Out.PolluteFlow, Inputs);
      joinVar(S.Receiver, Vals);
      join(S.Target, Inputs);
      return;
    }

    auto SiteIt = SiteOf.find({F, S.Index});
    const CallSite *Site =
        SiteIt == SiteOf.end() ? nullptr : &CG.sites()[SiteIt->second];

    if (Site && Site->Kind == CalleeKind::Resolved) {
      // The union-of-inputs floor guards the builder's empty-return-
      // summary case, which degrades to an unknown-call result node.
      OriginMask Res = Inputs;
      for (FuncId T : Site->Targets) {
        const FunctionSummary &G = Sums[T];
        Res |= mapThroughArgs(G.RetFlow, G, S);
        if (G.RetFlow)
          Res |= OtherOrigin; // shared return nodes: context collapse
        for (int C = 0; C < NumSinkClasses; ++C)
          joinMask(Out.SinkFlow[C], mapThroughArgs(G.SinkFlow[C], G, S));
        joinMask(Out.PolluteFlow, mapThroughArgs(G.PolluteFlow, G, S));
        joinMask(Out.UnresolvedArgFlow,
                 mapThroughArgs(G.UnresolvedArgFlow, G, S));
        joinMask(Out.GlobalWriteFlow, mapThroughArgs(G.GlobalWriteFlow, G, S));
        if (G.CallsUnresolved)
          setFlag(Out.CallsUnresolved);
        for (size_t I = 0; I < G.MutFlow.size() && I < S.Args.size(); ++I)
          joinVar(S.Args[I], mapThroughArgs(G.MutFlow[I], G, S));
      }
      join(S.Target, Res);
      return;
    }

    if (Site && Site->Kind == CalleeKind::External) {
      // Unknown call: the result depends only on its inputs.
      join(S.Target, Inputs);
      return;
    }

    // Unresolved (or unattributed): the callee may be any function; it
    // can return anything it saw and mutate every argument container.
    setFlag(Out.CallsUnresolved);
    joinMask(Out.UnresolvedArgFlow, Inputs);
    join(S.Target, Inputs | OtherOrigin);
    for (const Operand &A : S.Args)
      joinVar(A, Inputs | OtherOrigin);
    joinVar(S.Receiver, Inputs | OtherOrigin);
  }
};

} // namespace

SummarySet computeSummaries(const CallGraph &CG,
                            const std::vector<const core::Program *> &Modules,
                            const SinkTable &Sinks) {
  SummarySet Set;
  Set.Summaries.resize(CG.functions().size());
  for (size_t I = 0; I < CG.functions().size(); ++I) {
    Set.Summaries[I].Name = CG.functions()[I].Name;
    const core::Function *Fn = CG.functions()[I].Fn;
    Set.Summaries[I].NumParams =
        Fn ? static_cast<unsigned>(Fn->Params.size()) : 0;
    Set.Summaries[I].MutFlow.assign(Set.Summaries[I].NumParams, 0);
  }

  std::map<std::pair<FuncId, core::StmtIndex>, size_t> SiteOf;
  for (size_t I = 0; I < CG.sites().size(); ++I)
    SiteOf[{CG.sites()[I].Caller, CG.sites()[I].Index}] = I;

  // Bottom-up: the SCC order is callees-first, so callee summaries are
  // final by the time a caller reads them; within an SCC, iterate.
  for (const std::vector<FuncId> &SCC : CG.sccOrder()) {
    bool Changed = true;
    for (int Iter = 0; Changed && Iter < 130; ++Iter) {
      Changed = false;
      for (FuncId Fn : SCC) {
        FunctionSummary New =
            LocalAnalyzer(CG, Modules, Sinks, Set.Summaries, SiteOf, Fn)
                .run();
        if (!(New == Set.Summaries[Fn])) {
          Set.Summaries[Fn] = std::move(New);
          Changed = true;
        }
      }
    }
  }
  return Set;
}

PruneDecision decidePruning(const CallGraph &CG, const SummarySet &S,
                            bool CodeMissing) {
  PruneDecision D;
  const std::vector<FunctionSummary> &Sums = S.Summaries;
  std::vector<bool> Reach = CG.reachableFromRoots();

  // Syntactic facts are package-global: a site in an unreachable
  // function still exists in the graph (toplevel passes and inlining
  // may materialize it).
  bool HasSite[NumSinkClasses] = {false, false, false, false};
  bool HasVU = false;
  for (const FunctionSummary &F : Sums) {
    for (int C = 0; C < NumSinkClasses; ++C)
      HasSite[C] |= F.HasSinkSite[C];
    HasVU |= F.HasVUSite;
  }

  // Taint exists only if some exported entry point has parameters.
  bool TaintSources = false;
  for (const CGFunction &F : CG.functions())
    if (F.IsEntry && F.Fn && !F.Fn->Params.empty())
      TaintSources = true;

  // `other` becomes live once any reachable function can push taint
  // into shared state or shared return nodes (context collapse).
  bool OtherLive = false;
  for (int Pass = 0; Pass < 2; ++Pass)
    for (size_t I = 0; I < Sums.size(); ++I) {
      if (!Reach[I])
        continue;
      OriginMask Live =
          paramsMask(Sums[I].NumParams) | (OtherLive ? OtherOrigin : 0);
      if (Live & (Sums[I].RetFlow | Sums[I].GlobalWriteFlow))
        OtherLive = true;
    }

  auto LiveMask = [&](const FunctionSummary &F) {
    return paramsMask(F.NumParams) | (OtherLive ? OtherOrigin : 0);
  };

  // The Unresolved fallback rule: a reachable dynamic call that can see
  // live taint defeats summary reasoning entirely.
  bool UnresolvedHazard = false;
  for (size_t I = 0; I < Sums.size(); ++I)
    if (Reach[I] && (LiveMask(Sums[I]) & Sums[I].UnresolvedArgFlow))
      UnresolvedHazard = true;

  auto FlowClean = [&](int C) {
    for (size_t I = 0; I < Sums.size(); ++I) {
      if (!Reach[I])
        continue;
      OriginMask Flow = C == SinkClassPrototypePollution
                            ? Sums[I].PolluteFlow
                            : Sums[I].SinkFlow[C];
      if (LiveMask(Sums[I]) & Flow)
        return false;
    }
    return true;
  };

  for (int C = 0; C < NumSinkClasses; ++C) {
    bool Pollution = C == SinkClassPrototypePollution;
    if (!TaintSources) {
      D.Prunable[C] = true;
      D.Reason[C] = "no-taint-sources";
    } else if (CodeMissing && UnresolvedHazard) {
      // Linked tree with invisible packages: live taint reaching an
      // unresolved callee may enter code absent from this graph, and "no
      // sink callsites *here*" proves nothing about it (see header doc).
      D.Reason[C] = "unresolved-callee";
    } else if (!Pollution && !HasSite[C]) {
      D.Prunable[C] = true;
      D.Reason[C] = "no-sink-callsites";
    } else if (Pollution && !HasVU) {
      D.Prunable[C] = true;
      D.Reason[C] = "no-dynamic-writes";
    } else if (UnresolvedHazard) {
      D.Reason[C] = "unresolved-callee";
    } else if (FlowClean(C)) {
      D.Prunable[C] = true;
      D.Reason[C] = "summaries-clean";
    } else {
      D.Reason[C] = Pollution ? "vu-reachable" : "sink-reachable";
    }
  }
  return D;
}

std::string PruneDecision::str() const {
  std::string Out;
  for (int C = 0; C < NumSinkClasses; ++C) {
    if (!Out.empty())
      Out += ",";
    Out += std::string(sinkClassTag(C)) + ":" +
           (Prunable[C] ? "pruned(" : "kept(") + Reason[C] + ")";
  }
  return Out;
}

std::string dumpText(const SummarySet &S, const CallGraph &CG) {
  std::ostringstream OS;
  PruneDecision D = decidePruning(CG, S);
  OS << "summaries: " << S.Summaries.size() << " functions\n";
  for (size_t I = 0; I < S.Summaries.size(); ++I) {
    const FunctionSummary &F = S.Summaries[I];
    OS << "  " << F.Name << "/" << F.NumParams;
    if (CG.functions()[I].IsEntry)
      OS << " [entry]";
    OS << "\n";
    for (int C = 0; C < NumSinkClasses; ++C)
      if (F.SinkFlow[C] || F.HasSinkSite[C])
        OS << "    " << sinkClassTag(C) << ": flow "
           << maskToString(F.SinkFlow[C], F.NumParams)
           << (F.HasSinkSite[C] ? " (site)" : "") << "\n";
    if (F.RetFlow)
      OS << "    ret: " << maskToString(F.RetFlow, F.NumParams) << "\n";
    if (F.PolluteFlow || F.HasVUSite)
      OS << "    prop-write: " << maskToString(F.PolluteFlow, F.NumParams)
         << (F.HasVUSite ? " (vu site)" : "") << "\n";
    if (F.CallsUnresolved)
      OS << "    calls-unresolved: "
         << maskToString(F.UnresolvedArgFlow, F.NumParams) << "\n";
  }
  OS << "prune decision: " << D.str() << "\n";
  return OS.str();
}

// --- JSON round trip --------------------------------------------------------

static std::string maskHex(OriginMask M) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llx",
                static_cast<unsigned long long>(M));
  return Buf;
}

static bool parseMask(const json::Value &V, OriginMask &Out) {
  if (!V.isString())
    return false;
  Out = std::strtoull(V.asString().c_str(), nullptr, 16);
  return true;
}

std::string summariesToJSON(const SummarySet &S) {
  json::Array Fns;
  for (const FunctionSummary &F : S.Summaries) {
    json::Object O;
    O["name"] = json::Value(F.Name);
    O["num_params"] = json::Value(F.NumParams);
    json::Array Sink, Sites, Mut;
    for (int C = 0; C < NumSinkClasses; ++C) {
      Sink.push_back(json::Value(maskHex(F.SinkFlow[C])));
      Sites.push_back(json::Value(F.HasSinkSite[C]));
    }
    for (OriginMask M : F.MutFlow)
      Mut.push_back(json::Value(maskHex(M)));
    O["sink_flow"] = json::Value(std::move(Sink));
    O["has_sink_site"] = json::Value(std::move(Sites));
    O["mut_flow"] = json::Value(std::move(Mut));
    O["ret_flow"] = json::Value(maskHex(F.RetFlow));
    O["pollute_flow"] = json::Value(maskHex(F.PolluteFlow));
    O["unresolved_arg_flow"] = json::Value(maskHex(F.UnresolvedArgFlow));
    O["global_write_flow"] = json::Value(maskHex(F.GlobalWriteFlow));
    O["has_vu_site"] = json::Value(F.HasVUSite);
    O["calls_unresolved"] = json::Value(F.CallsUnresolved);
    Fns.push_back(json::Value(std::move(O)));
  }
  json::Object Root;
  Root["functions"] = json::Value(std::move(Fns));
  return json::Value(std::move(Root)).str(2);
}

bool summariesFromJSON(const std::string &Text, SummarySet &Out,
                       std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  json::Value Root;
  std::string ParseErr;
  if (!json::parse(Text, Root, &ParseErr))
    return Fail(ParseErr);
  if (!Root.isObject() || !Root.asObject().count("functions") ||
      !Root.asObject().at("functions").isArray())
    return Fail("summary JSON needs a 'functions' array");
  Out.Summaries.clear();
  for (const json::Value &V : Root.asObject().at("functions").asArray()) {
    if (!V.isObject())
      return Fail("each summary must be an object");
    const json::Object &O = V.asObject();
    FunctionSummary F;
    if (!O.count("name") || !O.at("name").isString())
      return Fail("summary needs a 'name'");
    F.Name = O.at("name").asString();
    if (O.count("num_params") && O.at("num_params").isNumber())
      F.NumParams = static_cast<unsigned>(O.at("num_params").asNumber());
    if (O.count("sink_flow") && O.at("sink_flow").isArray()) {
      const json::Array &A = O.at("sink_flow").asArray();
      for (size_t C = 0; C < A.size() && C < NumSinkClasses; ++C)
        if (!parseMask(A[C], F.SinkFlow[C]))
          return Fail("bad sink_flow mask");
    }
    if (O.count("has_sink_site") && O.at("has_sink_site").isArray()) {
      const json::Array &A = O.at("has_sink_site").asArray();
      for (size_t C = 0; C < A.size() && C < NumSinkClasses; ++C)
        F.HasSinkSite[C] = A[C].isBool() && A[C].asBool();
    }
    if (O.count("mut_flow") && O.at("mut_flow").isArray())
      for (const json::Value &M : O.at("mut_flow").asArray()) {
        OriginMask Mask = 0;
        if (!parseMask(M, Mask))
          return Fail("bad mut_flow mask");
        F.MutFlow.push_back(Mask);
      }
    auto Mask = [&](const char *Key, OriginMask &Slot) {
      if (O.count(Key))
        parseMask(O.at(Key), Slot);
    };
    Mask("ret_flow", F.RetFlow);
    Mask("pollute_flow", F.PolluteFlow);
    Mask("unresolved_arg_flow", F.UnresolvedArgFlow);
    Mask("global_write_flow", F.GlobalWriteFlow);
    F.HasVUSite = O.count("has_vu_site") && O.at("has_vu_site").isBool() &&
                  O.at("has_vu_site").asBool();
    F.CallsUnresolved = O.count("calls_unresolved") &&
                        O.at("calls_unresolved").isBool() &&
                        O.at("calls_unresolved").asBool();
    Out.Summaries.push_back(std::move(F));
  }
  return true;
}

} // namespace analysis
} // namespace gjs
