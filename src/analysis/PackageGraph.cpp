//===- analysis/PackageGraph.cpp - Dependency-tree discovery ---------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/PackageGraph.h"

#include "support/JSON.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace gjs;
using namespace gjs::analysis;
namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Graph construction
//===----------------------------------------------------------------------===//

size_t PackageGraph::addPackage(PackageInfo P) {
  Finalized = false;
  Pkgs.push_back(std::move(P));
  return Pkgs.size() - 1;
}

size_t PackageGraph::indexOf(const std::string &Name) const {
  for (size_t I = 0; I < Pkgs.size(); ++I)
    if (Pkgs[I].Name == Name)
      return I;
  return Pkgs.size();
}

void PackageGraph::finalize() {
  if (Finalized)
    return;
  // Resolve declared dependency names; unknown names become synthetic
  // Missing packages so every declared edge has an endpoint (the lint
  // pass and the soundness valve both key off these).
  std::map<std::string, size_t> ByName;
  for (size_t I = 0; I < Pkgs.size(); ++I)
    ByName.emplace(Pkgs[I].Name, I);
  for (size_t I = 0; I < Pkgs.size(); ++I)
    for (const std::string &Dep : Pkgs[I].Deps)
      if (!ByName.count(Dep)) {
        PackageInfo M;
        M.Name = Dep;
        M.Missing = true;
        ByName.emplace(Dep, Pkgs.size());
        Pkgs.push_back(std::move(M));
      }
  Edges.assign(Pkgs.size(), {});
  for (size_t I = 0; I < Pkgs.size(); ++I)
    for (const std::string &Dep : Pkgs[I].Deps)
      Edges[I].push_back(ByName.at(Dep));
  computeOrder();
  Finalized = true;
}

/// Iterative Tarjan over the package dependency relation. Components come
/// out in reverse topological order of the condensation — dependencies
/// before dependents — which is exactly the bottom-up summary link order.
void PackageGraph::computeOrder() {
  size_t N = Pkgs.size();
  Order.clear();
  std::vector<int> Index(N, -1), Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<size_t> Stack;
  int Next = 0;

  struct Frame {
    size_t V;
    size_t Edge = 0;
  };
  for (size_t Start = 0; Start < N; ++Start) {
    if (Index[Start] != -1)
      continue;
    std::vector<Frame> Frames{{Start}};
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      size_t V = F.V;
      if (F.Edge == 0) {
        Index[V] = Low[V] = Next++;
        Stack.push_back(V);
        OnStack[V] = true;
      }
      if (F.Edge < Edges[V].size()) {
        size_t W = Edges[V][F.Edge++];
        if (Index[W] == -1)
          Frames.push_back({W});
        else if (OnStack[W])
          Low[V] = std::min(Low[V], Index[W]);
        continue;
      }
      if (Low[V] == Index[V]) {
        std::vector<size_t> SCC;
        for (;;) {
          size_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SCC.push_back(W);
          if (W == V)
            break;
        }
        Order.push_back(std::move(SCC));
      }
      Frames.pop_back();
      if (!Frames.empty()) {
        Frame &P = Frames.back();
        Low[P.V] = std::min(Low[P.V], Low[V]);
      }
    }
  }
}

bool PackageGraph::hasCycles() const {
  for (const auto &SCC : Order)
    if (SCC.size() > 1)
      return true;
  for (size_t I = 0; I < Edges.size(); ++I)
    for (size_t J : Edges[I])
      if (J == I)
        return true;
  return false;
}

std::vector<std::vector<std::string>> PackageGraph::cycles() const {
  std::vector<std::vector<std::string>> Out;
  for (const auto &SCC : Order) {
    if (SCC.size() <= 1)
      continue;
    std::vector<std::string> Names;
    for (size_t I : SCC)
      Names.push_back(Pkgs[I].Name);
    std::sort(Names.begin(), Names.end());
    Out.push_back(std::move(Names));
  }
  return Out;
}

bool PackageGraph::hasMissing() const {
  for (const PackageInfo &P : Pkgs)
    if (P.Missing || P.Unparseable)
      return true;
  return false;
}

std::vector<std::string> PackageGraph::missingNames() const {
  std::vector<std::string> Out;
  for (const PackageInfo &P : Pkgs)
    if (P.Missing || P.Unparseable)
      Out.push_back(P.Name);
  std::sort(Out.begin(), Out.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// Flattening
//===----------------------------------------------------------------------===//

/// Normalizes "./index.js" and "index.js" to the same form for main-module
/// matching.
static std::string normPath(const std::string &P) {
  std::string S = P;
  if (S.rfind("./", 0) == 0)
    S = S.substr(2);
  return S;
}

static std::string fileStem(const std::string &Name) {
  std::string S = Name;
  size_t Slash = S.find_last_of('/');
  if (Slash != std::string::npos)
    S = S.substr(Slash + 1);
  if (S.size() > 3 && S.compare(S.size() - 3, 3, ".js") == 0)
    S = S.substr(0, S.size() - 3);
  return S;
}

PackageGraph::FlatPlan PackageGraph::flatten() const {
  FlatPlan Plan;
  for (const auto &SCC : Order) {
    for (size_t PI : SCC) {
      const PackageInfo &P = Pkgs[PI];
      if (!P.analyzable()) {
        // The soundness valve: every require of this name must stay an
        // unresolved callee.
        Plan.MissingDeps.insert(P.Name);
        if (!P.Missing)
          Plan.Warnings.push_back("package '" + P.Name +
                                  "' is present but not analyzable; requires "
                                  "of it stay unresolved");
        continue;
      }
      std::string Main = normPath(P.Main);
      bool SawMain = false;
      std::set<std::string> Stems;
      for (const PackageFile &F : P.Files) {
        FlatModule M;
        M.Path = P.Name + "/" + normPath(F.Path);
        M.Pkg = P.Name;
        M.Contents = &F.Contents;
        M.IsMain = normPath(F.Path) == Main ||
                   normPath(F.Path) == Main + ".js";
        SawMain = SawMain || M.IsMain;
        if (!Stems.insert(fileStem(F.Path)).second)
          Plan.Warnings.push_back("package '" + P.Name +
                                  "' has two files with module stem '" +
                                  fileStem(F.Path) +
                                  "'; relative requires of it are ambiguous");
        Plan.Modules.push_back(std::move(M));
      }
      if (!SawMain) {
        // No file matches the declared main: bare requires of this package
        // would silently resolve to nothing, so force them unresolved.
        Plan.MissingDeps.insert(P.Name);
        Plan.Warnings.push_back("package '" + P.Name + "' declares main '" +
                                P.Main + "' but ships no such file; bare "
                                "requires of it stay unresolved");
      }
    }
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// Manifest loading (graphjs.deps.json)
//===----------------------------------------------------------------------===//

static bool readFileText(const fs::path &P, std::string &Out) {
  std::ifstream In(P, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

static std::string jsonStr(const json::Object &O, const char *Key,
                           const std::string &Default = "") {
  auto It = O.find(Key);
  return It != O.end() && It->second.isString() ? It->second.asString()
                                                : Default;
}

bool PackageGraph::fromManifest(const std::string &Text,
                                const std::string &BaseDir, PackageGraph &Out,
                                std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = "graphjs.deps.json: " + Msg;
    return false;
  };
  json::Value V;
  std::string PErr;
  if (!json::parse(Text, V, &PErr))
    return Fail("parse error: " + PErr);
  if (!V.isObject())
    return Fail("top level must be an object");
  const json::Object &Top = V.asObject();
  auto SchemaIt = Top.find("schema");
  if (SchemaIt == Top.end() || !SchemaIt->second.isNumber() ||
      static_cast<int>(SchemaIt->second.asNumber()) != 1)
    return Fail("unsupported or missing schema (expected 1)");
  auto PkgsIt = Top.find("packages");
  if (PkgsIt == Top.end() || !PkgsIt->second.isArray())
    return Fail("missing 'packages' array");

  for (const json::Value &PV : PkgsIt->second.asArray()) {
    if (!PV.isObject())
      return Fail("package entries must be objects");
    const json::Object &PO = PV.asObject();
    PackageInfo P;
    P.Name = jsonStr(PO, "name");
    if (P.Name.empty())
      return Fail("package entry without a name");
    P.Version = jsonStr(PO, "version");
    P.Main = jsonStr(PO, "main", "index.js");
    std::string Dir = jsonStr(PO, "dir");
    if (auto It = PO.find("missing");
        It != PO.end() && It->second.isBool() && It->second.asBool())
      P.Missing = true;
    if (auto It = PO.find("deps"); It != PO.end() && It->second.isArray())
      for (const json::Value &D : It->second.asArray())
        if (D.isString())
          P.Deps.push_back(D.asString());
    if (auto It = PO.find("files"); It != PO.end() && It->second.isArray())
      for (const json::Value &F : It->second.asArray()) {
        if (!F.isString())
          continue;
        PackageFile PF;
        PF.Path = F.asString();
        fs::path Full = fs::path(BaseDir) / Dir / PF.Path;
        if (!readFileText(Full, PF.Contents)) {
          // A listed file we cannot read: the package becomes unanalyzable
          // (soundness valve) instead of silently partial.
          P.Unparseable = true;
          continue;
        }
        P.Files.push_back(std::move(PF));
      }
    Out.addPackage(std::move(P));
  }
  std::string RootName = jsonStr(Top, "root");
  if (!RootName.empty()) {
    size_t R = Out.indexOf(RootName);
    if (R == Out.packages().size())
      return Fail("root '" + RootName + "' is not in the package list");
    Out.setRoot(R);
  }
  Out.finalize();
  return true;
}

//===----------------------------------------------------------------------===//
// On-disk discovery (package.json + node_modules)
//===----------------------------------------------------------------------===//

namespace {

/// Reads one package directory: package.json (all fields optional; the
/// directory name is the fallback package name) plus every .js file under
/// it, skipping nested node_modules.
PackageInfo readPackageDir(const fs::path &Dir) {
  PackageInfo P;
  P.Name = Dir.filename().string();
  std::string Manifest;
  if (readFileText(Dir / "package.json", Manifest)) {
    json::Value V;
    if (json::parse(Manifest, V) && V.isObject()) {
      const json::Object &O = V.asObject();
      std::string Name = jsonStr(O, "name");
      if (!Name.empty())
        P.Name = Name;
      P.Version = jsonStr(O, "version");
      P.Main = jsonStr(O, "main", "index.js");
      if (auto It = O.find("dependencies");
          It != O.end() && It->second.isObject())
        for (const auto &[Dep, Ver] : It->second.asObject())
          P.Deps.push_back(Dep);
    } else {
      P.Unparseable = true;
    }
  }
  std::error_code EC;
  for (fs::recursive_directory_iterator
           It(Dir, fs::directory_options::skip_permission_denied, EC),
       End;
       It != End; It.increment(EC)) {
    if (EC)
      break;
    if (It->is_directory() && It->path().filename() == "node_modules") {
      It.disable_recursion_pending();
      continue;
    }
    if (!It->is_regular_file() || It->path().extension() != ".js")
      continue;
    PackageFile F;
    F.Path = fs::relative(It->path(), Dir, EC).generic_string();
    if (EC || !readFileText(It->path(), F.Contents)) {
      P.Unparseable = true;
      continue;
    }
    P.Files.push_back(std::move(F));
  }
  std::sort(P.Files.begin(), P.Files.end(),
            [](const PackageFile &A, const PackageFile &B) {
              return A.Path < B.Path;
            });
  return P;
}

} // namespace

bool PackageGraph::discover(const std::string &RootDir, PackageGraph &Out,
                            std::string *Error) {
  fs::path Root(RootDir);
  std::error_code EC;
  if (!fs::is_directory(Root, EC)) {
    if (Error)
      *Error = "not a directory: " + RootDir;
    return false;
  }
  std::string ManifestText;
  if (readFileText(Root / "graphjs.deps.json", ManifestText))
    return fromManifest(ManifestText, RootDir, Out, Error);

  // npm layout: the root package plus its node_modules closure. A declared
  // dependency resolves against the dependent's own node_modules first,
  // then the scan root's (the hoisted layout); unresolved names become
  // Missing packages in finalize().
  std::vector<fs::path> DirOf; // parallel to Out's packages
  std::map<std::string, size_t> Seen;
  PackageInfo RootPkg = readPackageDir(Root);
  Seen.emplace(RootPkg.Name, Out.addPackage(std::move(RootPkg)));
  DirOf.push_back(Root);
  Out.setRoot(0);

  for (size_t I = 0; I < Out.packages().size(); ++I) {
    if (I >= DirOf.size())
      break; // synthetic entries have no directory
    // Copy: addPackage below may reallocate the packages vector.
    std::vector<std::string> Deps = Out.packages()[I].Deps;
    for (const std::string &Dep : Deps) {
      if (Seen.count(Dep))
        continue;
      fs::path Candidate = DirOf[I] / "node_modules" / Dep;
      if (!fs::is_directory(Candidate, EC))
        Candidate = Root / "node_modules" / Dep;
      if (!fs::is_directory(Candidate, EC))
        continue; // finalize() synthesizes the Missing entry
      PackageInfo P = readPackageDir(Candidate);
      // Index by the *declared* name: a mismatched package.json name would
      // otherwise leave the dependency dangling.
      P.Name = Dep;
      Seen.emplace(Dep, Out.addPackage(std::move(P)));
      DirOf.push_back(Candidate);
    }
  }
  Out.finalize();
  return true;
}

//===----------------------------------------------------------------------===//
// Per-package summary serialization
//===----------------------------------------------------------------------===//

std::string analysis::packageSummaryToJSON(const PackageSummaries &P) {
  // Reuse the SummarySet serializer and wrap it with the package envelope.
  json::Value Sums;
  std::string Err;
  if (!json::parse(summariesToJSON(P.Sums), Sums, &Err))
    Sums = json::Value(json::Object{});
  json::Object O;
  O["schema"] = json::Value(P.Schema);
  O["package"] = json::Value(P.Package);
  O["version"] = json::Value(P.Version);
  O["summaries"] = std::move(Sums);
  return json::Value(std::move(O)).str(2);
}

bool analysis::packageSummaryFromJSON(const std::string &Text,
                                      PackageSummaries &Out,
                                      std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  json::Value V;
  std::string PErr;
  if (!json::parse(Text, V, &PErr))
    return Fail("package summary parse error: " + PErr);
  if (!V.isObject())
    return Fail("package summary must be an object");
  const json::Object &O = V.asObject();
  auto SchemaIt = O.find("schema");
  if (SchemaIt == O.end() || !SchemaIt->second.isNumber())
    return Fail("package summary missing schema");
  Out.Schema = static_cast<int>(SchemaIt->second.asNumber());
  if (Out.Schema != PackageSummarySchemaVersion)
    return Fail("package summary schema " + std::to_string(Out.Schema) +
                " != supported " + std::to_string(PackageSummarySchemaVersion));
  Out.Package = jsonStr(O, "package");
  Out.Version = jsonStr(O, "version");
  auto SumsIt = O.find("summaries");
  if (SumsIt == O.end())
    return Fail("package summary missing 'summaries'");
  return summariesFromJSON(SumsIt->second.str(), Out.Sums, Error);
}

std::vector<PackageSummaries>
analysis::slicePackageSummaries(const PackageGraph &G, const CallGraph &CG,
                                const SummarySet &S,
                                const ModuleLinkInfo &Link) {
  std::map<std::string, size_t> SliceOf;
  std::vector<PackageSummaries> Out;
  const std::vector<CGFunction> &Funcs = CG.functions();
  for (size_t I = 0; I < Funcs.size() && I < S.Summaries.size(); ++I) {
    size_t M = Funcs[I].ModuleIndex;
    std::string Pkg = M < Link.PkgOf.size() ? Link.PkgOf[M] : std::string();
    auto [It, New] = SliceOf.emplace(Pkg, Out.size());
    if (New) {
      PackageSummaries PS;
      PS.Package = Pkg;
      size_t PI = G.indexOf(Pkg);
      if (PI < G.packages().size())
        PS.Version = G.packages()[PI].Version;
      Out.push_back(std::move(PS));
    }
    Out[It->second].Sums.Summaries.push_back(S.Summaries[I]);
  }
  return Out;
}
