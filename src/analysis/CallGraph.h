//===- analysis/CallGraph.h - Static call graph over Core IR -----*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static call graph extracted from normalized Core IR, mirroring the
/// resolution power of the MDG builder's store-based inlining: direct
/// calls through locally function-bound variables, copy chains, and
/// cross-module calls through sibling `module.exports` objects resolve
/// to definitions; everything the builder *could* resolve but this pass
/// cannot lands in an explicit `Unresolved` bucket so the summary-based
/// pruning stage (TaintSummary.h) stays sound. Calls into host builtins
/// and non-sibling requires are `External`: the builder models them as
/// unknown calls whose result depends only on their inputs.
///
/// The graph also tracks exported entry points (the same per-module
/// `module.exports` rule as MDGBuilder::markEntryPoints, including the
/// fallback-all-functions mode) and function values that escape into
/// the heap or into call arguments — escaped functions may be invoked
/// by code we cannot see, so they are treated as additional roots.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_ANALYSIS_CALLGRAPH_H
#define GJS_ANALYSIS_CALLGRAPH_H

#include "core/CoreIR.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gjs {
namespace analysis {

using FuncId = unsigned;
constexpr FuncId InvalidFuncId = ~0u;

/// How a call site's callee was classified.
enum class CalleeKind {
  /// Every possible callee is a known function definition (Targets).
  Resolved,
  /// A host builtin or non-sibling require: the MDG builder treats the
  /// call as unknown (result depends on inputs only), so no user code
  /// runs behind it. Function-valued arguments become callback roots.
  External,
  /// The builder's store-based resolution might reach user code we
  /// cannot name (method calls, escaped functions, dynamic callees).
  Unresolved,
};

const char *calleeKindName(CalleeKind K);

/// Cross-package linking context for a flattened dependency-tree build
/// (produced by PackageGraph::flatten; see docs/DEPENDENCIES.md). The
/// vectors are parallel to the Modules/Stems build inputs. When absent,
/// resolution falls back to the single-package sibling-stem rule.
struct ModuleLinkInfo {
  /// Owning package name per module ("" for unowned modules).
  std::vector<std::string> PkgOf;
  /// Package name -> index of that package's main module. Bare requires
  /// of a package name resolve through this map.
  std::map<std::string, size_t> MainModuleOf;
  /// Require targets that must classify as Unresolved: dependencies that
  /// are declared but missing, unparseable, or partially parsed. This is
  /// the cross-package soundness valve — code we cannot see could do
  /// anything, so no query touching it may be pruned.
  std::set<std::string> ForceUnresolved;

  bool empty() const {
    return PkgOf.empty() && MainModuleOf.empty() && ForceUnresolved.empty();
  }
};

/// One call statement, attributed to its enclosing function.
struct CallSite {
  core::StmtIndex Index = 0;
  SourceLocation Loc;
  std::string CalleeName; ///< syntactic name (`exec`, `push`, ...)
  std::string CalleePath; ///< alias-resolved path (`child_process.exec`)
  CalleeKind Kind = CalleeKind::Unresolved;
  std::vector<FuncId> Targets;      ///< Resolved: candidate definitions
  std::vector<FuncId> CallbackArgs; ///< function values passed as args
  FuncId Caller = InvalidFuncId;
  unsigned NumArgs = 0;
  bool IsNew = false;
  /// A promise-reaction/executor invocation synthesized by the async
  /// lowering (core/AsyncLower.h). Resolved reactions are registered
  /// callbacks bound to a real callee; unresolved ones fall under the
  /// UnresolvedCallback soundness valve (see numUnresolvedCallbacks).
  bool IsReaction = false;
};

/// A call-graph node: a function definition or a per-module top level.
struct CGFunction {
  std::string Name;
  const core::Function *Fn = nullptr; ///< null for module top levels
  size_t ModuleIndex = 0;
  bool IsEntry = false;    ///< exported per the markEntryPoints rule
  bool IsToplevel = false; ///< module initialization pseudo-function
  bool IsEscaped = false;  ///< value stored to heap / passed as argument
  std::vector<size_t> Sites; ///< indices into CallGraph::sites()
  /// Names this function reads that are not bound locally (free reads:
  /// closure captures and module/global state).
  std::vector<std::string> FreeReads;
  /// Locals (including params) of this function captured by a nested
  /// function — writes to these are visible beyond this activation.
  std::vector<std::string> CapturedLocals;
};

class CallGraph {
public:
  /// Builds the call graph for a package. Modules and Stems are parallel
  /// (Stems as produced by the scanner: file stem per module). The
  /// fallback flag must match BuilderOptions::FallbackAllFunctionsExported
  /// for the entry sets to agree. With \p Link, inter-package `require`
  /// edges resolve to the exporting package's functions: bare requires go
  /// through Link->MainModuleOf, relative requires stay within the owning
  /// package, and names in Link->ForceUnresolved classify as Unresolved
  /// (the cross-package soundness valve).
  static CallGraph build(const std::vector<const core::Program *> &Modules,
                         const std::vector<std::string> &Stems,
                         bool FallbackAllFunctionsExported = true,
                         const ModuleLinkInfo *Link = nullptr);

  /// Single-module convenience overload.
  static CallGraph build(const core::Program &Prog,
                         bool FallbackAllFunctionsExported = true);

  const std::vector<CGFunction> &functions() const { return Funcs; }
  const std::vector<CallSite> &sites() const { return Sites; }

  FuncId functionByName(const std::string &Name) const;

  /// Strongly connected components of the resolved call relation, in
  /// reverse topological order over the condensation: every resolved
  /// call from a function in SCC i lands in SCC j <= i, so a bottom-up
  /// summary pass can walk the list front to back.
  const std::vector<std::vector<FuncId>> &sccOrder() const { return SCCs; }

  /// Entry functions (exported API) in registration order.
  std::vector<FuncId> entryFunctions() const;

  /// Functions reachable from the roots (entries, module top levels,
  /// escaped functions) over resolved and callback edges.
  std::vector<bool> reachableFromRoots() const;

  size_t numResolvedEdges() const;
  size_t numExternalSites() const;
  size_t numUnresolvedSites() const;
  /// Reaction/executor sites from the async lowering (CallSite::IsReaction).
  size_t numReactionSites() const;
  /// The UnresolvedCallback soundness valve's population: function values
  /// handed to call sites we could not resolve (callback registrations
  /// whose invocation we cannot see). Each keeps its function reachable
  /// and blocks pruning on paths through the site.
  size_t numUnresolvedCallbacks() const;

  /// True if any function value escapes into the heap or a call
  /// argument (limits how confidently unresolved callees can be ruled
  /// out — see TaintSummary.cpp's soundness argument).
  bool anyFunctionEscapes() const { return AnyEscape; }

  std::string dumpText() const;
  std::string toDot() const;

private:
  std::vector<CGFunction> Funcs;
  std::vector<CallSite> Sites;
  std::vector<std::vector<FuncId>> SCCs;
  std::map<std::string, FuncId> ByName;
  bool AnyEscape = false;

  friend class CallGraphBuilder;
  void computeSCCs();
};

} // namespace analysis
} // namespace gjs

#endif // GJS_ANALYSIS_CALLGRAPH_H
