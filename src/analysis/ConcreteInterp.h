//===- analysis/ConcreteInterp.h - Instrumented concrete semantics -*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented big-step concrete semantics of §3.3:
/// ⟨g, h, ρ, s⟩ ⇓_c ⟨g', h', ρ'⟩. Executing a Core JavaScript program on
/// concrete inputs both computes values AND builds a *concrete* MDG, whose
/// edges all carry known property names.
///
/// Each concrete location is tagged with the allocation key the abstract
/// analysis would use for the same statement (site, version-site, lazy-prop
/// site, ...). The soundness property tests use those tags as the
/// abstraction function α of Definition 3.1 and check that every concrete
/// D/P/V edge has an abstract counterpart — the executable content of
/// Theorem 3.2 (Soundness with Full Knowledge).
///
/// Deviations from real JavaScript are deliberate and shared with the
/// abstract side: constants carry no dependencies, missing-property reads
/// yield untracked `undefined`, and exceptions are not modeled.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_ANALYSIS_CONCRETEINTERP_H
#define GJS_ANALYSIS_CONCRETEINTERP_H

#include "core/CoreIR.h"
#include "mdg/MDG.h"
#include "support/StringInterner.h"

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace gjs {
namespace analysis {

/// How a concrete location was allocated — the key α uses to map it to an
/// abstract location.
struct LocTag {
  enum class Kind {
    None,        ///< Untracked (literal temporaries, missing-prop reads).
    Site,        ///< Created by statement i (objects, binops, literals).
    Version,     ///< New object version created by update statement i.
    Value,       ///< Literal RHS of update statement i.
    Call,        ///< Call node of call statement i.
    Ret,         ///< Result of unknown call statement i.
    Global,      ///< Unbound variable (name in Name).
    Param,       ///< Entry parameter ("fn:param" in Name).
    LazyProp,    ///< Pre-existing field first read by static lookup i
                 ///< (property name in Name) — α maps it to the abstract
                 ///< AP node of that site.
    UnknownProp, ///< Pre-existing field first read by dynamic lookup i —
                 ///< α maps it to the abstract AP* node of that site.
  };
  Kind K = Kind::None;
  core::StmtIndex Site = 0;
  std::string Name;
};

/// A concrete runtime value.
struct ConcreteValue {
  enum class Kind { Undefined, Null, Boolean, Number, String, Object, Function };
  Kind K = Kind::Undefined;
  bool Bool = false;
  double Num = 0;
  std::string Str;
  /// Object payload: property name -> location.
  std::map<std::string, uint32_t> Props;
  /// Function payload.
  const core::Function *Fn = nullptr;

  bool truthy() const;
  std::string toDisplayString() const;
};

/// What a concrete run observed at a call site (witness replay relies on
/// these to confirm taint-style findings: did an attacker-controlled
/// canary string reach the sink's arguments?).
struct CallObservation {
  uint32_t Line = 0;
  std::string CalleeName;
  std::string CalleePath;
  std::vector<std::string> ArgValues;
};

/// A dynamic property write observed at runtime (pollution witnesses).
struct WriteObservation {
  uint32_t Line = 0;
  std::string PropName;
  std::string Value;
};

/// Result of a concrete run.
struct ConcreteResult {
  mdg::Graph Graph;          ///< The concrete MDG.
  StringInterner Props;      ///< Property names used on edges.
  std::vector<LocTag> Tags;  ///< Tag per graph node id.
  bool Diverged = false;     ///< Hit the step/loop cap.
  /// Locations (graph node ids) of the entry function's parameters.
  std::vector<mdg::NodeId> ParamNodes;
  /// Every call executed, with rendered argument values.
  std::vector<CallObservation> Calls;
  /// Every dynamic property write executed.
  std::vector<WriteObservation> DynWrites;
};

/// Options for a concrete run.
struct InterpOptions {
  uint64_t MaxSteps = 100000;
  unsigned MaxLoopIters = 64;
  unsigned MaxCallDepth = 32;
};

/// A JSON-like argument spec for entry-function inputs, so property tests
/// can randomize nested objects without touching the heap directly.
struct ValueSpec {
  ConcreteValue::Kind K = ConcreteValue::Kind::Undefined;
  double Num = 0;
  std::string Str;
  bool Bool = false;
  std::vector<std::pair<std::string, ValueSpec>> Fields;

  static ValueSpec number(double N) {
    ValueSpec S;
    S.K = ConcreteValue::Kind::Number;
    S.Num = N;
    return S;
  }
  static ValueSpec string(std::string Text) {
    ValueSpec S;
    S.K = ConcreteValue::Kind::String;
    S.Str = std::move(Text);
    return S;
  }
  static ValueSpec object(
      std::vector<std::pair<std::string, ValueSpec>> Fields = {}) {
    ValueSpec S;
    S.K = ConcreteValue::Kind::Object;
    S.Fields = std::move(Fields);
    return S;
  }
};

class ConcreteInterp {
public:
  explicit ConcreteInterp(InterpOptions O = {});

  /// Runs the top-level code, then calls the named entry function with
  /// \p Args (materialized recursively).
  ConcreteResult run(const core::Program &Program,
                     const std::string &EntryFunction,
                     const std::vector<ValueSpec> &Args);

private:
  InterpOptions Options;
};

} // namespace analysis
} // namespace gjs

#endif // GJS_ANALYSIS_CONCRETEINTERP_H
