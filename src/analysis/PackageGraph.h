//===- analysis/PackageGraph.h - Dependency-tree discovery ------*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-package analysis support: discovery of a scan root's dependency
/// tree, the package DAG with SCC collapse for cyclic dependency groups,
/// and the flattening that lets the existing multi-module pipeline (MDG
/// builder, call graph, taint summaries) analyze a whole tree as one
/// linked unit. See docs/DEPENDENCIES.md.
///
/// Two discovery paths:
///
///  - A `graphjs.deps.json` manifest (the format the workload generator
///    emits): an explicit package list with files, main modules, and
///    declared dependency edges.
///
///  - The npm on-disk layout: `package.json` + `node_modules/` walked
///    recursively from the scan root.
///
/// Either way, a dependency that is declared but cannot be located (or
/// whose files cannot be read) becomes a *missing* package: its name is
/// routed into ModuleLinkInfo::ForceUnresolved so every require of it
/// stays an unresolved callee — the cross-package soundness valve that
/// keeps `decidePruning` sound over code we cannot see.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_ANALYSIS_PACKAGEGRAPH_H
#define GJS_ANALYSIS_PACKAGEGRAPH_H

#include "analysis/CallGraph.h"
#include "analysis/TaintSummary.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gjs {
namespace analysis {

/// One source file of a package, path relative to the package root.
struct PackageFile {
  std::string Path;
  std::string Contents;
};

/// One package of a dependency tree.
struct PackageInfo {
  std::string Name;
  std::string Version;          ///< "" when unknown
  std::string Main = "index.js"; ///< what a bare require resolves to
  std::vector<PackageFile> Files;
  std::vector<std::string> Deps; ///< declared dependency names
  /// Declared by a dependent but not found on disk / in the manifest.
  bool Missing = false;
  /// Located but unreadable (bad package.json, unreadable files): treated
  /// like Missing for linking purposes.
  bool Unparseable = false;

  bool analyzable() const { return !Missing && !Unparseable && !Files.empty(); }
};

/// The dependency tree of a scan root: packages, the dependency DAG, and
/// its condensation (SCC collapse) in bottom-up link order.
class PackageGraph {
public:
  /// Adds a package; returns its index. Call finalize() after the last one.
  size_t addPackage(PackageInfo P);

  /// Marks the scan root (defaults to index 0).
  void setRoot(size_t Index) { Root = Index; }

  /// Resolves declared dependency names to edges, synthesizing a Missing
  /// package for every name that no added package carries, and computes
  /// the SCC link order. Idempotent.
  void finalize();

  /// Parses a `graphjs.deps.json` manifest (see docs/DEPENDENCIES.md for
  /// the format), reading file contents relative to \p BaseDir. A listed
  /// file that cannot be read marks its package Unparseable (the valve)
  /// rather than failing the whole load. Finalizes \p Out on success.
  static bool fromManifest(const std::string &Text, const std::string &BaseDir,
                           PackageGraph &Out, std::string *Error = nullptr);

  /// Discovers a dependency tree on disk: prefers `RootDir/graphjs.deps.json`
  /// when present, else reads `package.json` and walks `node_modules/`
  /// recursively. Finalizes \p Out on success.
  static bool discover(const std::string &RootDir, PackageGraph &Out,
                       std::string *Error = nullptr);

  const std::vector<PackageInfo> &packages() const { return Pkgs; }
  size_t rootIndex() const { return Root; }

  /// Index of the named package, or packages().size() when absent.
  size_t indexOf(const std::string &Name) const;

  /// depEdges()[i] = indices of the packages package i depends on.
  const std::vector<std::vector<size_t>> &depEdges() const { return Edges; }

  /// SCCs of the package dependency relation in bottom-up (dependencies
  /// first) order: the summary linking order. Cyclic dependency groups
  /// collapse into one component.
  const std::vector<std::vector<size_t>> &linkOrder() const { return Order; }

  /// True when any dependency cycle exists (an SCC with more than one
  /// package, or a self-dependency).
  bool hasCycles() const;

  /// The cyclic dependency groups, as package-name lists (lint report).
  std::vector<std::vector<std::string>> cycles() const;

  /// True when any package is Missing or Unparseable.
  bool hasMissing() const;

  /// Names of all Missing/Unparseable packages.
  std::vector<std::string> missingNames() const;

  //===--------------------------------------------------------------------===//
  // Flattening
  //===--------------------------------------------------------------------===//

  /// One module of the flattened tree. Contents points into this graph:
  /// the graph must outlive the plan.
  struct FlatModule {
    std::string Path; ///< "<pkg>/<file>": unique, shows up in diagnostics
    std::string Pkg;
    const std::string *Contents = nullptr;
    bool IsMain = false;
  };

  /// The flattened dependency tree: every analyzable package's files in
  /// bottom-up link order, plus the names that must classify as
  /// unresolved (ModuleLinkInfo::ForceUnresolved).
  struct FlatPlan {
    std::vector<FlatModule> Modules;
    std::set<std::string> MissingDeps;
    std::vector<std::string> Warnings;
  };

  FlatPlan flatten() const;

private:
  std::vector<PackageInfo> Pkgs;
  size_t Root = 0;
  bool Finalized = false;
  std::vector<std::vector<size_t>> Edges;
  std::vector<std::vector<size_t>> Order;

  void computeOrder();
};

//===----------------------------------------------------------------------===//
// Per-package summary serialization (linked scans <-> batch journal)
//===----------------------------------------------------------------------===//

/// Schema version of the per-package summary JSON. The pkggraph lint pass
/// rejects mismatches: composing summaries produced by a different lattice
/// is silently wrong, not gracefully degraded.
constexpr int PackageSummarySchemaVersion = 1;

/// One package's slice of a linked summary computation.
struct PackageSummaries {
  std::string Package;
  std::string Version;
  int Schema = PackageSummarySchemaVersion;
  SummarySet Sums;
};

std::string packageSummaryToJSON(const PackageSummaries &P);
bool packageSummaryFromJSON(const std::string &Text, PackageSummaries &Out,
                            std::string *Error = nullptr);

/// Slices a flattened build's summaries per package: function I belongs to
/// the package owning its module (Link.PkgOf[CG.functions()[I].ModuleIndex]).
/// \p CG and \p S must come from the same build \p Link was used for.
std::vector<PackageSummaries>
slicePackageSummaries(const PackageGraph &G, const CallGraph &CG,
                      const SummarySet &S, const ModuleLinkInfo &Link);

} // namespace analysis
} // namespace gjs

#endif // GJS_ANALYSIS_PACKAGEGRAPH_H
