//===- analysis/ConcreteInterp.cpp - Instrumented concrete semantics ------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/ConcreteInterp.h"

#include <cassert>
#include <cmath>
#include <sstream>

using namespace gjs;
using namespace gjs::analysis;
using namespace gjs::mdg;
using core::Operand;
using core::StmtKind;

bool ConcreteValue::truthy() const {
  switch (K) {
  case Kind::Undefined:
  case Kind::Null:
    return false;
  case Kind::Boolean:
    return Bool;
  case Kind::Number:
    return Num != 0 && !std::isnan(Num);
  case Kind::String:
    return !Str.empty();
  case Kind::Object:
  case Kind::Function:
    return true;
  }
  return false;
}

std::string ConcreteValue::toDisplayString() const {
  switch (K) {
  case Kind::Undefined:
    return "undefined";
  case Kind::Null:
    return "null";
  case Kind::Boolean:
    return Bool ? "true" : "false";
  case Kind::Number: {
    std::ostringstream OS;
    OS << Num;
    return OS.str();
  }
  case Kind::String:
    return Str;
  case Kind::Object:
    return "[object Object]";
  case Kind::Function:
    return "[function]";
  }
  return "";
}

namespace {

using Loc = uint32_t;
constexpr Loc NoLoc = static_cast<Loc>(-1);

/// The actual interpreter state. Every heap location has a parallel graph
/// node (possibly tagged None = untracked).
class Machine {
public:
  Machine(const core::Program &Prog, const InterpOptions &O,
          ConcreteResult &Out)
      : Prog(Prog), Options(O), Out(Out) {}

  void runTopLevel() { execBlock(Prog.TopLevel); }

  Loc callFunction(const core::Function &Fn, const std::vector<Loc> &Args,
                   Loc This);

  Loc allocLoc(ConcreteValue V, LocTag Tag) {
    Loc L = static_cast<Loc>(Heap.size());
    Heap.push_back(std::move(V));
    NodeId N = Out.Graph.addNode(NodeKind::Object, Tag.Site, SourceLocation(),
                                 Tag.Name);
    assert(N == L && "heap locations and graph nodes must stay aligned");
    (void)N;
    Out.Tags.push_back(std::move(Tag));
    return L;
  }

  ConcreteValue &value(Loc L) { return Heap[L]; }
  bool tracked(Loc L) const {
    return L != NoLoc && Out.Tags[L].K != LocTag::Kind::None;
  }

  std::map<std::string, Loc> Store;
  std::vector<ConcreteValue> Heap;

private:
  const core::Program &Prog;
  const InterpOptions &Options;
  ConcreteResult &Out;
  uint64_t Steps = 0;
  unsigned CallDepth = 0;
  bool ReturnHit = false;
  Loc RetLoc = NoLoc;

  bool step() {
    if (++Steps > Options.MaxSteps) {
      Out.Diverged = true;
      return false;
    }
    return true;
  }

  Loc untracked(ConcreteValue V) { return allocLoc(std::move(V), LocTag()); }

  Loc evalOperand(const Operand &O, bool Track, core::StmtIndex Site,
                  LocTag::Kind TagKind);
  ConcreteValue literalValue(const Operand &O);
  void execBlock(const std::vector<core::StmtPtr> &Block);
  void execStmt(const core::Stmt &S);
  void execUpdate(const core::Stmt &S, const std::string &PropName,
                  bool Dynamic, Loc NameLoc);
  void execCall(const core::Stmt &S);
  ConcreteValue applyBinOp(const std::string &Op, const ConcreteValue &A,
                           const ConcreteValue &B);

  /// Concrete models of common string/array builtins (`split`, `join`,
  /// `slice`, ...). Returns true and binds the call target when modeled.
  /// Keeping these concrete is what lets witness replay confirm findings
  /// in real package idioms like `prop.split('.')`.
  bool tryBuiltinMethod(const core::Stmt &S, Loc ReceiverLoc,
                        const std::vector<Loc> &ArgLocs, Loc CallLoc);
};

ConcreteValue Machine::literalValue(const Operand &O) {
  ConcreteValue V;
  switch (O.K) {
  case Operand::Kind::Var:
    // Callers route variables through the environment; a variable reaching
    // here is a lowering gap, not a crash — treat it as undefined.
    break;
  case Operand::Kind::Number:
    V.K = ConcreteValue::Kind::Number;
    V.Num = O.Num;
    break;
  case Operand::Kind::String:
    V.K = ConcreteValue::Kind::String;
    V.Str = O.Name;
    break;
  case Operand::Kind::Boolean:
    V.K = ConcreteValue::Kind::Boolean;
    V.Bool = O.Bool;
    break;
  case Operand::Kind::Null:
    V.K = ConcreteValue::Kind::Null;
    break;
  case Operand::Kind::Undefined:
    break;
  }
  return V;
}

Loc Machine::evalOperand(const Operand &O, bool Track, core::StmtIndex Site,
                         LocTag::Kind TagKind) {
  if (O.isVar()) {
    auto It = Store.find(O.Name);
    if (It != Store.end())
      return It->second;
    // Unbound variable. The abstract side over-approximates every branch,
    // so it may have bound this name where the concrete run did not;
    // concretely the read is an untracked undefined/global object.
    ConcreteValue V;
    V.K = ConcreteValue::Kind::Object;
    Loc L = untracked(std::move(V));
    Store[O.Name] = L;
    return L;
  }
  // Literal: tracked only where the abstract side allocates a node.
  if (Track) {
    LocTag Tag;
    Tag.K = TagKind;
    Tag.Site = Site;
    return allocLoc(literalValue(O), std::move(Tag));
  }
  return untracked(literalValue(O));
}

void Machine::execBlock(const std::vector<core::StmtPtr> &Block) {
  for (const core::StmtPtr &S : Block) {
    if (ReturnHit || Out.Diverged)
      return;
    execStmt(*S);
  }
}

ConcreteValue Machine::applyBinOp(const std::string &Op,
                                  const ConcreteValue &A,
                                  const ConcreteValue &B) {
  ConcreteValue R;
  auto Num = [](const ConcreteValue &V) -> double {
    switch (V.K) {
    case ConcreteValue::Kind::Number:
      return V.Num;
    case ConcreteValue::Kind::Boolean:
      return V.Bool ? 1 : 0;
    case ConcreteValue::Kind::String: {
      char *End = nullptr;
      double D = std::strtod(V.Str.c_str(), &End);
      return End && *End == '\0' && !V.Str.empty() ? D : 0;
    }
    default:
      return 0;
    }
  };
  if (Op == "+") {
    if (A.K == ConcreteValue::Kind::String ||
        B.K == ConcreteValue::Kind::String) {
      R.K = ConcreteValue::Kind::String;
      R.Str = A.toDisplayString() + B.toDisplayString();
    } else {
      R.K = ConcreteValue::Kind::Number;
      R.Num = Num(A) + Num(B);
    }
    return R;
  }
  if (Op == "-" || Op == "*" || Op == "/" || Op == "%" || Op == "**" ||
      Op == "&" || Op == "|" || Op == "^" || Op == "<<" || Op == ">>" ||
      Op == ">>>") {
    R.K = ConcreteValue::Kind::Number;
    double X = Num(A), Y = Num(B);
    if (Op == "-")
      R.Num = X - Y;
    else if (Op == "*")
      R.Num = X * Y;
    else if (Op == "/")
      R.Num = Y != 0 ? X / Y : 0;
    else if (Op == "%")
      R.Num = Y != 0 ? std::fmod(X, Y) : 0;
    else if (Op == "**")
      R.Num = std::pow(X, Y);
    else {
      long LX = static_cast<long>(X), LY = static_cast<long>(Y);
      if (Op == "&")
        R.Num = static_cast<double>(LX & LY);
      else if (Op == "|")
        R.Num = static_cast<double>(LX | LY);
      else if (Op == "^")
        R.Num = static_cast<double>(LX ^ LY);
      else if (Op == "<<")
        R.Num = static_cast<double>(LX << (LY & 31));
      else
        R.Num = static_cast<double>(LX >> (LY & 31));
    }
    return R;
  }
  if (Op == "==" || Op == "===" || Op == "!=" || Op == "!==") {
    bool Eq = A.K == B.K && A.Num == B.Num && A.Str == B.Str &&
              A.Bool == B.Bool;
    R.K = ConcreteValue::Kind::Boolean;
    R.Bool = (Op[0] == '=') == Eq;
    return R;
  }
  if (Op == "<" || Op == ">" || Op == "<=" || Op == ">=") {
    R.K = ConcreteValue::Kind::Boolean;
    double X = Num(A), Y = Num(B);
    if (A.K == ConcreteValue::Kind::String &&
        B.K == ConcreteValue::Kind::String) {
      R.Bool = Op == "<"    ? A.Str < B.Str
               : Op == ">"  ? A.Str > B.Str
               : Op == "<=" ? A.Str <= B.Str
                            : A.Str >= B.Str;
    } else {
      R.Bool = Op == "<"    ? X < Y
               : Op == ">"  ? X > Y
               : Op == "<=" ? X <= Y
                            : X >= Y;
    }
    return R;
  }
  if (Op == "&&")
    return A.truthy() ? B : A;
  if (Op == "||" || Op == "??")
    return A.truthy() ? A : B;
  if (Op == "in") {
    R.K = ConcreteValue::Kind::Boolean;
    R.Bool = B.K == ConcreteValue::Kind::Object &&
             B.Props.count(A.toDisplayString()) != 0;
    return R;
  }
  // instanceof and anything else: false.
  R.K = ConcreteValue::Kind::Boolean;
  return R;
}

void Machine::execStmt(const core::Stmt &S) {
  if (!step())
    return;

  switch (S.K) {
  case StmtKind::Assign: {
    if (S.Value.isVar()) {
      Store[S.Target] = evalOperand(S.Value, false, S.Index,
                                    LocTag::Kind::None);
    } else {
      // Mirror the abstract side: literal assignments allocate at the site.
      Store[S.Target] =
          evalOperand(S.Value, true, S.Index, LocTag::Kind::Site);
    }
    break;
  }
  case StmtKind::BinOp: {
    Loc L1 = S.LHS.isVar() ? evalOperand(S.LHS, false, 0, LocTag::Kind::None)
                           : NoLoc;
    Loc L2 = S.RHS.isVar() ? evalOperand(S.RHS, false, 0, LocTag::Kind::None)
                           : NoLoc;
    ConcreteValue A = L1 != NoLoc ? value(L1) : literalValue(S.LHS);
    ConcreteValue B = L2 != NoLoc ? value(L2) : literalValue(S.RHS);
    LocTag Tag;
    Tag.K = LocTag::Kind::Site;
    Tag.Site = S.Index;
    Loc R = allocLoc(applyBinOp(S.Op, A, B), std::move(Tag));
    if (L1 != NoLoc && tracked(L1))
      Out.Graph.addEdge(L1, R, EdgeKind::Dep);
    if (L2 != NoLoc && tracked(L2))
      Out.Graph.addEdge(L2, R, EdgeKind::Dep);
    Store[S.Target] = R;
    break;
  }
  case StmtKind::UnOp: {
    Loc L = S.Value.isVar()
                ? evalOperand(S.Value, false, 0, LocTag::Kind::None)
                : NoLoc;
    ConcreteValue In = L != NoLoc ? value(L) : literalValue(S.Value);
    ConcreteValue V;
    if (S.Op == "!") {
      V.K = ConcreteValue::Kind::Boolean;
      V.Bool = !In.truthy();
    } else if (S.Op == "-") {
      V.K = ConcreteValue::Kind::Number;
      V.Num = In.K == ConcreteValue::Kind::Number ? -In.Num : 0;
    } else if (S.Op == "typeof") {
      V.K = ConcreteValue::Kind::String;
      V.Str = In.K == ConcreteValue::Kind::Object     ? "object"
              : In.K == ConcreteValue::Kind::String   ? "string"
              : In.K == ConcreteValue::Kind::Number   ? "number"
              : In.K == ConcreteValue::Kind::Function ? "function"
                                                      : "undefined";
    } else if (S.Op == "key-of") {
      // for-in key: the first property name of the object.
      if (In.K == ConcreteValue::Kind::Object && !In.Props.empty()) {
        V.K = ConcreteValue::Kind::String;
        V.Str = In.Props.begin()->first;
      }
    } else if (S.Op == "keys" || S.Op == "iter") {
      V.K = ConcreteValue::Kind::Number;
      V.Num = In.K == ConcreteValue::Kind::Object
                  ? static_cast<double>(In.Props.size())
                  : 0;
    } else {
      V = In; // await/yield/rest/+ pass values through.
    }
    LocTag Tag;
    Tag.K = LocTag::Kind::Site;
    Tag.Site = S.Index;
    Loc R = allocLoc(std::move(V), std::move(Tag));
    if (L != NoLoc && tracked(L))
      Out.Graph.addEdge(L, R, EdgeKind::Dep);
    Store[S.Target] = R;
    break;
  }
  case StmtKind::NewObject: {
    ConcreteValue V;
    V.K = ConcreteValue::Kind::Object;
    LocTag Tag;
    Tag.K = LocTag::Kind::Site;
    Tag.Site = S.Index;
    Store[S.Target] = allocLoc(std::move(V), std::move(Tag));
    break;
  }
  case StmtKind::FuncDef: {
    ConcreteValue V;
    V.K = ConcreteValue::Kind::Function;
    V.Fn = S.Func.get();
    LocTag Tag;
    Tag.K = LocTag::Kind::Site;
    Tag.Site = S.Index;
    Store[S.Target] = allocLoc(std::move(V), std::move(Tag));
    break;
  }
  case StmtKind::StaticLookup:
  case StmtKind::DynamicLookup: {
    bool Dynamic = S.K == StmtKind::DynamicLookup;
    std::string PropName;
    Loc NameLoc = NoLoc;
    if (!Dynamic) {
      PropName = S.Prop;
    } else if (S.PropOperand.isVar()) {
      NameLoc = evalOperand(S.PropOperand, false, 0, LocTag::Kind::None);
      PropName = value(NameLoc).toDisplayString();
    } else {
      PropName = literalValue(S.PropOperand).toDisplayString();
    }
    Loc ObjLoc = evalOperand(S.Obj, false, 0, LocTag::Kind::None);
    // String length is a real value (guards like `s.length < 4` must
    // evaluate faithfully for witness replay).
    if (value(ObjLoc).K == ConcreteValue::Kind::String &&
        PropName == "length") {
      ConcreteValue LenV;
      LenV.K = ConcreteValue::Kind::Number;
      LenV.Num = static_cast<double>(value(ObjLoc).Str.size());
      Store[S.Target] = untracked(std::move(LenV));
      break;
    }
    ConcreteValue &OV = value(ObjLoc);
    Loc ResultLoc;
    if (OV.K == ConcreteValue::Kind::Object && OV.Props.count(PropName)) {
      ResultLoc = OV.Props.at(PropName);
      // Pre-existing fields (nested attacker inputs) get their abstract
      // image on first read: the lazy AP/AP* node of this lookup site.
      if (!tracked(ResultLoc)) {
        LocTag &T = Out.Tags[ResultLoc];
        T.K = Dynamic ? LocTag::Kind::UnknownProp : LocTag::Kind::LazyProp;
        T.Site = S.Index;
        T.Name = PropName;
      }
    } else {
      // Missing property: plain `undefined`, untracked (§3.3 note).
      ResultLoc = untracked(ConcreteValue());
    }
    // Dynamic lookup: the property name flows into the value read
    // ([Dynamic Property Lookup], l2 →D l').
    if (Dynamic && NameLoc != NoLoc && tracked(NameLoc) &&
        tracked(ResultLoc))
      Out.Graph.addEdge(NameLoc, ResultLoc, EdgeKind::Dep);
    Store[S.Target] = ResultLoc;
    break;
  }
  case StmtKind::StaticUpdate:
    execUpdate(S, S.Prop, /*Dynamic=*/false, NoLoc);
    break;
  case StmtKind::DynamicUpdate: {
    std::string PropName;
    Loc NameLoc = NoLoc;
    if (S.PropOperand.isVar()) {
      NameLoc = evalOperand(S.PropOperand, false, 0, LocTag::Kind::None);
      PropName = value(NameLoc).toDisplayString();
    } else {
      PropName = literalValue(S.PropOperand).toDisplayString();
    }
    execUpdate(S, PropName, /*Dynamic=*/true, NameLoc);
    break;
  }
  case StmtKind::Call:
    execCall(S);
    break;
  case StmtKind::Return: {
    RetLoc = evalOperand(S.Value, false, 0, LocTag::Kind::None);
    if (!S.Value.isVar())
      RetLoc = untracked(literalValue(S.Value));
    ReturnHit = true;
    break;
  }
  case StmtKind::If: {
    Loc C = S.Cond.isVar() ? evalOperand(S.Cond, false, 0, LocTag::Kind::None)
                           : NoLoc;
    bool Truthy = C != NoLoc ? value(C).truthy()
                             : literalValue(S.Cond).truthy();
    execBlock(Truthy ? S.Then : S.Else);
    break;
  }
  case StmtKind::While: {
    unsigned Iters = 0;
    while (!ReturnHit && !Out.Diverged) {
      Loc C = S.Cond.isVar()
                  ? evalOperand(S.Cond, false, 0, LocTag::Kind::None)
                  : NoLoc;
      bool Truthy = C != NoLoc ? value(C).truthy()
                               : literalValue(S.Cond).truthy();
      if (!Truthy || ++Iters > Options.MaxLoopIters)
        break;
      execBlock(S.Body);
    }
    break;
  }
  case StmtKind::Nop:
    break;
  }
}

void Machine::execUpdate(const core::Stmt &S, const std::string &PropName,
                         bool Dynamic, Loc NameLoc) {
  // NB: the paper's Core JavaScript applies NV_c to any value — primitives
  // are objectified on property update (real JS silently drops the write;
  // keeping the write is the sound over-approximating choice shared with
  // the abstract side, and what Definition 3.1 is checked against).
  Loc ObjLoc = evalOperand(S.Obj, false, 0, LocTag::Kind::None);
  Loc ValLoc = S.Value.isVar()
                   ? evalOperand(S.Value, false, 0, LocTag::Kind::None)
                   : evalOperand(S.Value, true, S.Index, LocTag::Kind::Value);

  // NV_c: a new version of the object, props copied, the updated one set.
  ConcreteValue NewV = value(ObjLoc);
  NewV.Props[PropName] = ValLoc;
  LocTag Tag;
  Tag.K = LocTag::Kind::Version;
  Tag.Site = S.Index;
  Loc NewLoc = allocLoc(std::move(NewV), std::move(Tag));

  Symbol P = Out.Props.intern(PropName);
  if (tracked(ObjLoc))
    Out.Graph.addEdge(ObjLoc, NewLoc, EdgeKind::Version, P);
  if (Dynamic) {
    WriteObservation Obs;
    Obs.Line = S.Loc.Line;
    Obs.PropName = PropName;
    Obs.Value = value(ValLoc).toDisplayString();
    Out.DynWrites.push_back(std::move(Obs));
  }
  if (Dynamic && NameLoc != NoLoc && tracked(NameLoc))
    Out.Graph.addEdge(NameLoc, NewLoc, EdgeKind::Dep);
  if (tracked(ValLoc))
    Out.Graph.addEdge(NewLoc, ValLoc, EdgeKind::Prop, P);

  // All variables referring to the old version now see the new one.
  for (auto &[Var, L] : Store)
    if (L == ObjLoc)
      L = NewLoc;
}

bool Machine::tryBuiltinMethod(const core::Stmt &S, Loc ReceiverLoc,
                               const std::vector<Loc> &ArgLocs,
                               Loc CallLoc) {
  if (ReceiverLoc == NoLoc)
    return false;
  const ConcreteValue Recv = value(ReceiverLoc); // Copy: heap may grow.
  const std::string &Name = S.CalleeName;

  auto ArgStr = [&](size_t I) {
    return I < ArgLocs.size() ? value(ArgLocs[I]).toDisplayString()
                              : std::string();
  };
  auto ArgNum = [&](size_t I, double Default) {
    if (I >= ArgLocs.size())
      return Default;
    const ConcreteValue &V = value(ArgLocs[I]);
    return V.K == ConcreteValue::Kind::Number ? V.Num : Default;
  };
  // Binds a derived result: tagged through the call site (Ret) with a
  // D edge from the call node, so soundness obligations still map.
  auto BindValue = [&](ConcreteValue V) {
    LocTag Tag;
    Tag.K = LocTag::Kind::Ret;
    Tag.Site = S.Index;
    Loc L = allocLoc(std::move(V), std::move(Tag));
    Out.Graph.addEdge(CallLoc, L, EdgeKind::Dep);
    Store[S.Target] = L;
    return L;
  };
  auto BindStr = [&](std::string Text) {
    ConcreteValue V;
    V.K = ConcreteValue::Kind::String;
    V.Str = std::move(Text);
    BindValue(std::move(V));
    return true;
  };

  // String receiver methods.
  if (Recv.K == ConcreteValue::Kind::String) {
    const std::string &Str = Recv.Str;
    if (Name == "split") {
      std::string Sep = ArgStr(0);
      ConcreteValue Arr;
      Arr.K = ConcreteValue::Kind::Object;
      Loc ArrLoc = BindValue(std::move(Arr));
      size_t Count = 0;
      size_t Pos = 0;
      while (true) {
        size_t Next = Sep.empty() ? std::string::npos : Str.find(Sep, Pos);
        std::string Part = Next == std::string::npos
                               ? Str.substr(Pos)
                               : Str.substr(Pos, Next - Pos);
        ConcreteValue PV;
        PV.K = ConcreteValue::Kind::String;
        PV.Str = std::move(Part);
        Loc PL = untracked(std::move(PV));
        value(ArrLoc).Props[std::to_string(Count)] = PL;
        ++Count;
        if (Next == std::string::npos)
          break;
        Pos = Next + Sep.size();
      }
      ConcreteValue LenV;
      LenV.K = ConcreteValue::Kind::Number;
      LenV.Num = static_cast<double>(Count);
      value(ArrLoc).Props["length"] = untracked(std::move(LenV));
      return true;
    }
    if (Name == "slice" || Name == "substring") {
      size_t From = static_cast<size_t>(std::max(0.0, ArgNum(0, 0)));
      size_t To = static_cast<size_t>(
          std::max(0.0, ArgNum(1, static_cast<double>(Str.size()))));
      From = std::min(From, Str.size());
      To = std::min(std::max(To, From), Str.size());
      return BindStr(Str.substr(From, To - From));
    }
    if (Name == "trim" || Name == "toString")
      return BindStr(Str);
    if (Name == "toLowerCase" || Name == "toUpperCase") {
      std::string Text = Str;
      for (char &C : Text)
        C = static_cast<char>(
            Name == "toLowerCase"
                ? std::tolower(static_cast<unsigned char>(C))
                : std::toupper(static_cast<unsigned char>(C)));
      return BindStr(Text);
    }
    if (Name == "concat")
      return BindStr(Str + ArgStr(0));
    if (Name == "charAt") {
      size_t I = static_cast<size_t>(std::max(0.0, ArgNum(0, 0)));
      return BindStr(I < Str.size() ? std::string(1, Str[I])
                                    : std::string());
    }
    if (Name == "replace") {
      std::string Needle = ArgStr(0), With = ArgStr(1);
      std::string Text = Str;
      if (!Needle.empty()) {
        size_t P = Text.find(Needle);
        if (P != std::string::npos)
          Text.replace(P, Needle.size(), With);
      }
      return BindStr(Text);
    }
    if (Name == "indexOf") {
      ConcreteValue V;
      V.K = ConcreteValue::Kind::Number;
      size_t P = Str.find(ArgStr(0));
      V.Num = P == std::string::npos ? -1 : static_cast<double>(P);
      BindValue(std::move(V));
      return true;
    }
  }

  // Array-like receiver: join concatenates the indexed properties.
  if (Recv.K == ConcreteValue::Kind::Object && Name == "join") {
    std::string Sep = ArgLocs.empty() ? "," : ArgStr(0);
    std::string Joined;
    for (size_t I = 0;; ++I) {
      auto It = Recv.Props.find(std::to_string(I));
      if (It == Recv.Props.end())
        break;
      if (I)
        Joined += Sep;
      Joined += value(It->second).toDisplayString();
    }
    return BindStr(Joined);
  }

  return false;
}

void Machine::execCall(const core::Stmt &S) {
  Loc CalleeLoc = evalOperand(S.Callee, false, 0, LocTag::Kind::None);

  // Concrete call node, mirroring the abstract f_i.
  LocTag CTag;
  CTag.K = LocTag::Kind::Call;
  CTag.Site = S.Index;
  ConcreteValue CV;
  Loc CallLoc = allocLoc(std::move(CV), std::move(CTag));

  std::vector<Loc> ArgLocs;
  for (const Operand &A : S.Args) {
    Loc L = A.isVar() ? evalOperand(A, false, 0, LocTag::Kind::None)
                      : untracked(literalValue(A));
    if (tracked(L))
      Out.Graph.addEdge(L, CallLoc, EdgeKind::Dep);
    ArgLocs.push_back(L);
  }

  // Record what this call actually received (witness replay evidence).
  {
    CallObservation Obs;
    Obs.Line = S.Loc.Line;
    Obs.CalleeName = S.CalleeName;
    Obs.CalleePath = S.CalleePath;
    for (Loc L : ArgLocs)
      Obs.ArgValues.push_back(value(L).toDisplayString());
    Out.Calls.push_back(std::move(Obs));
  }

  // The receiver flows into the call (mirrors the abstract builder).
  Loc ReceiverLoc = NoLoc;
  if (S.Receiver.isVar()) {
    ReceiverLoc = evalOperand(S.Receiver, false, 0, LocTag::Kind::None);
    if (tracked(ReceiverLoc))
      Out.Graph.addEdge(ReceiverLoc, CallLoc, EdgeKind::Dep);
  }

  if (tryBuiltinMethod(S, ReceiverLoc, ArgLocs, CallLoc))
    return;

  const ConcreteValue &Callee = value(CalleeLoc);
  if (Callee.K == ConcreteValue::Kind::Function && Callee.Fn &&
      CallDepth < Options.MaxCallDepth) {
    Loc ThisLoc = NoLoc;
    if (S.IsNew) {
      ConcreteValue O;
      O.K = ConcreteValue::Kind::Object;
      LocTag Tag;
      Tag.K = LocTag::Kind::Ret;
      Tag.Site = S.Index;
      ThisLoc = allocLoc(std::move(O), std::move(Tag));
      Out.Graph.addEdge(CallLoc, ThisLoc, EdgeKind::Dep);
    } else {
      ThisLoc = ReceiverLoc;
    }
    ++CallDepth;
    Loc R = callFunction(*Callee.Fn, ArgLocs, ThisLoc);
    --CallDepth;
    Store[S.Target] = S.IsNew ? ThisLoc : R;
    return;
  }

  // Unknown callee: result depends on the call.
  LocTag RTag;
  RTag.K = LocTag::Kind::Ret;
  RTag.Site = S.Index;
  ConcreteValue RV;
  if (S.IsNew)
    RV.K = ConcreteValue::Kind::Object;
  Loc Ret = allocLoc(std::move(RV), std::move(RTag));
  Out.Graph.addEdge(CallLoc, Ret, EdgeKind::Dep);
  Store[S.Target] = Ret;
}

Loc Machine::callFunction(const core::Function &Fn,
                          const std::vector<Loc> &Args, Loc This) {
  // Save and rebind parameter slots (plus `this`) for re-entrancy.
  std::vector<std::pair<std::string, Loc>> Saved;
  auto Bind = [&](const std::string &Name, Loc L) {
    auto It = Store.find(Name);
    Saved.push_back({Name, It != Store.end() ? It->second : NoLoc});
    if (L != NoLoc)
      Store[Name] = L;
    else
      Store[Name] = untracked(ConcreteValue());
  };
  for (size_t I = 0; I < Fn.Params.size(); ++I)
    Bind(Fn.Params[I], I < Args.size() ? Args[I] : NoLoc);
  Bind("this", This);

  bool SavedReturnHit = ReturnHit;
  Loc SavedRetLoc = RetLoc;
  ReturnHit = false;
  RetLoc = NoLoc;

  execBlock(Fn.Body);

  Loc Result = ReturnHit ? RetLoc : untracked(ConcreteValue());
  ReturnHit = SavedReturnHit;
  RetLoc = SavedRetLoc;

  for (auto It = Saved.rbegin(); It != Saved.rend(); ++It) {
    if (It->second == NoLoc)
      Store.erase(It->first);
    else
      Store[It->first] = It->second;
  }
  return Result;
}

} // namespace

ConcreteInterp::ConcreteInterp(InterpOptions O) : Options(O) {}

/// Materializes a spec into the machine's heap. Nested field locations are
/// untracked: the abstract side represents a whole parameter with one node
/// and discovers its structure lazily.
static Loc materialize(Machine &M, const ValueSpec &Spec, LocTag Tag) {
  ConcreteValue V;
  V.K = Spec.K;
  V.Num = Spec.Num;
  V.Str = Spec.Str;
  V.Bool = Spec.Bool;
  Loc L = M.allocLoc(std::move(V), std::move(Tag));
  for (const auto &[Name, FieldSpec] : Spec.Fields) {
    Loc F = materialize(M, FieldSpec, LocTag());
    M.value(L).Props[Name] = F;
  }
  return L;
}

ConcreteResult ConcreteInterp::run(const core::Program &Program,
                                   const std::string &EntryFunction,
                                   const std::vector<ValueSpec> &Args) {
  ConcreteResult Out;
  Machine M(Program, Options, Out);
  M.runTopLevel();

  auto It = Program.Functions.find(EntryFunction);
  if (It == Program.Functions.end())
    return Out;
  const core::Function &Fn = *It->second;

  // Materialize entry arguments as tracked parameter locations.
  std::vector<Loc> ArgLocs;
  for (size_t I = 0; I < Fn.Params.size(); ++I) {
    LocTag Tag;
    Tag.K = LocTag::Kind::Param;
    Tag.Name = Fn.Name + ":" + Fn.Params[I];
    Loc L = I < Args.size()
                ? materialize(M, Args[I], std::move(Tag))
                : M.allocLoc(ConcreteValue(), std::move(Tag));
    ArgLocs.push_back(L);
    Out.ParamNodes.push_back(L);
  }
  LocTag ThisTag;
  ThisTag.K = LocTag::Kind::Param;
  ThisTag.Name = Fn.Name + ":this";
  ConcreteValue ThisV;
  ThisV.K = ConcreteValue::Kind::Object;
  Loc ThisLoc = M.allocLoc(std::move(ThisV), std::move(ThisTag));

  M.callFunction(Fn, ArgLocs, ThisLoc);
  return Out;
}
