//===- analysis/MDGBuilder.cpp - Abstract MDG construction -----------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/MDGBuilder.h"

#include "analysis/CallGraph.h"
#include "obs/Counters.h"
#include "support/Deadline.h"

#include <algorithm>
#include <cassert>

using namespace gjs;
using namespace gjs::analysis;
using namespace gjs::mdg;
using core::Operand;
using core::StmtKind;

MDGBuilder::MDGBuilder(BuilderOptions Options) : Options(Options) {}

BuildResult analysis::buildMDG(const core::Program &Program,
                               BuilderOptions O) {
  MDGBuilder B(O);
  return B.build(Program);
}

BuildResult analysis::buildPackageMDG(const std::vector<PackageModule> &Modules,
                                      BuilderOptions O,
                                      const ModuleLinkInfo *Link) {
  MDGBuilder B(O);
  return B.buildPackage(Modules, Link);
}

/// Normalizes a require target to a module stem: `./helpers`, `helpers.js`,
/// and `../lib/helpers` all map to `helpers`.
static std::string moduleStem(const std::string &Name) {
  std::string S = Name;
  size_t Slash = S.find_last_of('/');
  if (Slash != std::string::npos)
    S = S.substr(Slash + 1);
  if (S.size() > 3 && S.compare(S.size() - 3, 3, ".js") == 0)
    S = S.substr(0, S.size() - 3);
  return S;
}

/// ModuleExports key for a module of \p Pkg in a dependency-tree build.
/// The separator cannot appear in file names, so `a/lib.js` and `b/lib.js`
/// get distinct keys.
static std::string exportKey(const std::string &Pkg, const std::string &Stem) {
  return Pkg + "\x01" + Stem;
}

/// ModuleExports key for the *main* module of \p Pkg: what a bare
/// `require('pkg')` from any other package resolves to.
static std::string mainKey(const std::string &Pkg) {
  return "\x02" + Pkg;
}

void MDGBuilder::finalize(BuildResult &R) {
  R.TimedOut = Aborted;
  R.WorkDone = Work;
  R.Alloc.Site = SiteAlloc;
  R.Alloc.Version = VersionAlloc;
  R.Alloc.Value = ValueAlloc;
  R.Alloc.Prop = PropAlloc;
  R.Alloc.UnknownProp = UnknownPropAlloc;
  R.Alloc.Call = CallAlloc;
  R.Alloc.Ret = RetAlloc;
  R.Alloc.Global = GlobalAlloc;
  R.Alloc.Param = ParamAlloc;
  R.FunctionNodes = FuncNodeByName;
}

BuildResult MDGBuilder::build(const core::Program &Program) {
  BuildResult R;
  Prog = &Program;
  Result = &R;
  G = &R.Graph;
  Store = AbstractStore();
  Work = 0;
  Aborted = false;

  // Module initialization code runs first, so exported functions see the
  // module-level state (closures over module variables).
  analyzeBlock(Program.TopLevel);

  markEntryPoints();

  finalize(R);
  return R;
}

BuildResult MDGBuilder::buildPackage(const std::vector<PackageModule> &Modules,
                                     const ModuleLinkInfo *Link) {
  BuildResult R;
  Result = &R;
  G = &R.Graph;
  Work = 0;
  Aborted = false;
  PkgLink = Link && !Link->empty() ? Link : nullptr;

  // Pass 1: every module's top level, each in a fresh store (top-level
  // variables are file-scoped), into the shared graph. After a module's
  // top level, materialize its exports object.
  std::vector<AbstractStore> ModuleStores(Modules.size());
  for (size_t I = 0; I < Modules.size() && !Aborted; ++I) {
    Prog = Modules[I].Program;
    CurPkg = Modules[I].Pkg;
    Store = AbstractStore();
    analyzeBlock(Prog->TopLevel);

    NodeId E = G->addNode(NodeKind::Object, 0, SourceLocation(),
                          "exports:" + Modules[I].Name);
    for (const core::ExportEntry &Ex : Prog->Exports) {
      if (Ex.FunctionName.empty())
        continue;
      auto It = FuncNodeByName.find(Ex.FunctionName);
      if (It != FuncNodeByName.end())
        G->addEdge(E, It->second, EdgeKind::Prop,
                   Result->Props.intern(Ex.ExportName));
    }
    std::string Stem = moduleStem(Modules[I].Name);
    if (PkgLink) {
      ModuleExports[exportKey(Modules[I].Pkg, Stem)] = E;
      if (Modules[I].IsMain)
        ModuleExports[mainKey(Modules[I].Pkg)] = E;
    } else {
      ModuleExports[Stem] = E;
    }
    ModuleStores[I] = Store;
  }

  // Pass 2: re-run the top levels so requires of modules listed *later*
  // (cycles, unsorted inputs) now link; allocators make this idempotent.
  for (size_t I = 0; I < Modules.size() && !Aborted; ++I) {
    Prog = Modules[I].Program;
    CurPkg = Modules[I].Pkg;
    Store = ModuleStores[I];
    analyzeBlock(Prog->TopLevel);
    ModuleStores[I] = Store;
  }

  // Pass 3: entry points, module by module, each under its own store.
  for (size_t I = 0; I < Modules.size() && !Aborted; ++I) {
    Prog = Modules[I].Program;
    CurPkg = Modules[I].Pkg;
    Store = ModuleStores[I];
    markEntryPoints();
  }

  PkgLink = nullptr;
  CurPkg.clear();
  finalize(R);
  return R;
}

NodeId MDGBuilder::lookupModuleExports(const std::string &RequireModule) {
  if (!PkgLink) {
    auto It = ModuleExports.find(moduleStem(RequireModule));
    return It == ModuleExports.end() ? InvalidNode : It->second;
  }
  std::string Stem = moduleStem(RequireModule);
  // The soundness valve: a require of a missing/unparseable dependency must
  // degrade to the fresh-object behavior so the query stage still sees an
  // unknown value (never a falsely-precise exports object).
  if (PkgLink->ForceUnresolved.count(RequireModule) ||
      PkgLink->ForceUnresolved.count(Stem))
    return InvalidNode;
  bool Relative = !RequireModule.empty() && RequireModule[0] == '.';
  if (!Relative)
    if (auto It = ModuleExports.find(mainKey(RequireModule));
        It != ModuleExports.end())
      return It->second;
  // Same-package sibling file (relative requires, or a bare name that is
  // not a known package).
  auto It = ModuleExports.find(exportKey(CurPkg, Stem));
  return It == ModuleExports.end() ? InvalidNode : It->second;
}

void MDGBuilder::markEntryPoints() {
  // Entry points: exported functions, else every function (fallback).
  std::vector<std::string> Entries;
  for (const core::ExportEntry &E : Prog->Exports)
    if (!E.FunctionName.empty() && Prog->Functions.count(E.FunctionName))
      Entries.push_back(E.FunctionName);
  if (Entries.empty() && Options.FallbackAllFunctionsExported)
    for (const auto &[Name, Fn] : Prog->Functions)
      Entries.push_back(Name);
  // Deduplicate, preserving order.
  std::vector<std::string> Unique;
  for (const std::string &E : Entries)
    if (std::find(Unique.begin(), Unique.end(), E) == Unique.end())
      Unique.push_back(E);

  for (const std::string &Name : Unique) {
    if (Aborted)
      break;
    const core::Function &Fn = *Prog->Functions.at(Name);
    std::vector<std::set<NodeId>> ArgLocs;
    for (const std::string &Param : Fn.Params) {
      std::string Key = Fn.Name + ":" + Param;
      auto It = ParamAlloc.find(Key);
      NodeId P;
      if (It != ParamAlloc.end()) {
        P = It->second;
      } else {
        P = G->addNode(NodeKind::Object, 0, Fn.Loc, Param);
        G->node(P).IsTaintSource = true;
        ParamAlloc[Key] = P;
        Result->TaintSources.push_back(P);
      }
      ArgLocs.push_back({P});
    }
    // `this` for exported methods: a fresh, untainted receiver object.
    std::string ThisKey = Fn.Name + ":this";
    NodeId ThisNode;
    if (auto It = ParamAlloc.find(ThisKey); It != ParamAlloc.end())
      ThisNode = It->second;
    else {
      ThisNode = G->addNode(NodeKind::Object, 0, Fn.Loc, "this");
      ParamAlloc[ThisKey] = ThisNode;
    }
    analyzeFunctionInline(Fn, ArgLocs, {ThisNode});
  }
}

bool MDGBuilder::budgetExceeded() {
  ++Work;
  obs::counters::BuilderStmts.add();
  if (Options.WorkBudget != 0 && Work > Options.WorkBudget)
    Aborted = true;
  // The scan-level deadline bounds the whole pipeline, not just this
  // phase: one checkpoint per abstract statement analyzed.
  if (Options.ScanDeadline && Options.ScanDeadline->checkpoint())
    Aborted = true;
  return Aborted;
}

//===----------------------------------------------------------------------===//
// Operand evaluation
//===----------------------------------------------------------------------===//

std::set<NodeId> MDGBuilder::eval(const Operand &O) {
  if (!O.isVar())
    return {};
  if (Store.contains(O.Name))
    return Store.get(O.Name);
  // Unbound variable: a global (or host builtin). Allocate a stable object
  // node for it so lookups and calls through it still work.
  auto It = GlobalAlloc.find(O.Name);
  NodeId N;
  if (It != GlobalAlloc.end()) {
    N = It->second;
  } else {
    N = G->addNode(NodeKind::Object, 0, SourceLocation(), O.Name);
    GlobalAlloc[O.Name] = N;
  }
  Store.set(O.Name, N);
  return {N};
}

std::set<NodeId> MDGBuilder::evalValue(const Operand &O, core::StmtIndex Site,
                                       SourceLocation Loc) {
  std::set<NodeId> L = eval(O);
  if (!L.empty())
    return L;
  if (O.isVar()) {
    // Variable bound to the empty set (e.g. assigned a literal earlier):
    // stand in a fresh value node so structural edges still materialize.
    auto It = ValueAlloc.find(Site);
    NodeId N = It != ValueAlloc.end()
                   ? It->second
                   : (ValueAlloc[Site] =
                          G->addNode(NodeKind::Object, Site, Loc, O.Name));
    return {N};
  }
  auto It = ValueAlloc.find(Site);
  NodeId N = It != ValueAlloc.end()
                 ? It->second
                 : (ValueAlloc[Site] =
                        G->addNode(NodeKind::Object, Site, Loc, O.str()));
  return {N};
}

NodeId MDGBuilder::allocAtSite(core::StmtIndex Site, SourceLocation Loc,
                               const std::string &Label) {
  auto It = SiteAlloc.find(Site);
  if (It != SiteAlloc.end())
    return It->second;
  NodeId N = G->addNode(NodeKind::Object, Site, Loc, Label);
  SiteAlloc[Site] = N;
  return N;
}

//===----------------------------------------------------------------------===//
// AP / AP* — lazy property materialization
//===----------------------------------------------------------------------===//

std::set<NodeId> MDGBuilder::ensureProperty(NodeId L, Symbol P,
                                            core::StmtIndex Site,
                                            SourceLocation Loc) {
  std::vector<NodeId> R = G->resolveProperty(L, P);
  if (R.empty()) {
    // The property "existed from the beginning": attach it to the oldest
    // version(s) of L (Fig. 1, line 7). The node is keyed by lookup site
    // so chained self-lookups in loops fold onto one node.
    auto Key = std::make_pair(Site, P);
    auto It = PropAlloc.find(Key);
    NodeId PN;
    if (It != PropAlloc.end()) {
      PN = It->second;
    } else {
      PN = G->addNode(NodeKind::Object, Site, Loc,
                      G->node(L).Label + "." + Result->Props.str(P));
      PropAlloc[Key] = PN;
    }
    for (NodeId O : G->oldestVersions(L))
      if (O != PN)
        G->addEdge(O, PN, EdgeKind::Prop, P);
    R = G->resolveProperty(L, P);
  }
  return {R.begin(), R.end()};
}

std::set<NodeId> MDGBuilder::ensureUnknownProperty(
    NodeId L, const std::set<NodeId> &NameLocs, core::StmtIndex Site,
    SourceLocation Loc) {
  // AP*: reuse L's direct P(*) property if present, else allocate one
  // (keyed by site: the cyclic representation of §5.5).
  std::vector<NodeId> Direct = G->unknownPropTargets(L);
  NodeId PN;
  if (!Direct.empty()) {
    PN = Direct.front();
  } else {
    auto It = UnknownPropAlloc.find(Site);
    if (It != UnknownPropAlloc.end()) {
      PN = It->second;
    } else {
      PN = G->addNode(NodeKind::Object, Site, Loc, G->node(L).Label + ".*");
      UnknownPropAlloc[Site] = PN;
    }
    if (L != PN)
      G->addEdge(L, PN, EdgeKind::PropUnknown);
  }
  // The read value depends on the dynamic property name — for the P(*)
  // node and for every known property the name may alias (the concrete
  // semantics adds l2 →D l' for the actual value read, so soundness
  // requires covering all candidates).
  std::vector<NodeId> R = G->resolveUnknownProperty(L);
  for (NodeId NL : NameLocs) {
    G->addEdge(NL, PN, EdgeKind::Dep);
    for (NodeId T : R)
      if (NL != T)
        G->addEdge(NL, T, EdgeKind::Dep);
  }
  return {R.begin(), R.end()};
}

//===----------------------------------------------------------------------===//
// NV / NV* — versioning
//===----------------------------------------------------------------------===//

std::vector<NodeId> MDGBuilder::newVersions(
    const std::set<NodeId> &Objs, core::StmtIndex Site, Symbol P,
    bool IsUnknown, const std::set<NodeId> &NameLocs, SourceLocation Loc) {
  if (!Options.SiteVersionReuse) {
    // Ablated allocator: fresh version per (site, old version). Loop
    // iterations extend the chain instead of folding onto one node.
    std::vector<NodeId> Out;
    for (NodeId L : Objs) {
      auto Key = std::make_pair(Site, L);
      auto It = VersionAllocAblated.find(Key);
      NodeId V;
      if (It != VersionAllocAblated.end()) {
        V = It->second;
      } else {
        V = G->addNode(NodeKind::Object, Site, Loc, G->node(L).Label + "'");
        VersionAllocAblated[Key] = V;
      }
      if (L != V)
        G->addEdge(
            L, V, IsUnknown ? EdgeKind::VersionUnknown : EdgeKind::Version,
            P);
      Store.replaceEverywhere(L, V);
      for (NodeId NL : NameLocs)
        G->addEdge(NL, V, EdgeKind::Dep);
      Out.push_back(V);
    }
    return Out;
  }

  // One version node per update site: same-site updates in later loop
  // iterations fold back onto the same node (cyclic representation, §5.5).
  auto It = VersionAlloc.find(Site);
  NodeId V;
  if (It != VersionAlloc.end()) {
    V = It->second;
  } else {
    std::string Label =
        Objs.empty() ? "v" : G->node(*Objs.begin()).Label + "'";
    V = G->addNode(NodeKind::Object, Site, Loc, Label);
    VersionAlloc[Site] = V;
  }
  for (NodeId L : Objs) {
    if (L != V)
      G->addEdge(L, V,
                 IsUnknown ? EdgeKind::VersionUnknown : EdgeKind::Version, P);
    Store.replaceEverywhere(L, V);
  }
  // For dynamic updates, the updated property's name flows into the new
  // version (Fig. 1 line 5: o3 →D o6).
  for (NodeId NL : NameLocs)
    G->addEdge(NL, V, EdgeKind::Dep);
  return {V};
}

//===----------------------------------------------------------------------===//
// Statement analysis
//===----------------------------------------------------------------------===//

void MDGBuilder::analyzeBlock(const std::vector<core::StmtPtr> &Block) {
  for (const core::StmtPtr &S : Block) {
    if (Aborted)
      return;
    analyzeStmt(*S);
  }
}

void MDGBuilder::fixpoint(const std::vector<core::StmtPtr> &Body) {
  for (unsigned Iter = 0; Iter < Options.MaxFixpointIters; ++Iter) {
    uint64_t Rev = G->revision();
    AbstractStore Before = Store;
    analyzeBlock(Body);
    Store.joinWith(Before);
    if (Aborted)
      return;
    if (G->revision() == Rev && Store == Before)
      return;
  }
}

void MDGBuilder::analyzeStmt(const core::Stmt &S) {
  if (budgetExceeded())
    return;

  switch (S.K) {
  case StmtKind::Assign: {
    // Literal assignments materialize a (dependency-free) value node so the
    // abstraction function α of the soundness theorem stays a function:
    // the concrete semantics allocates a location here too.
    if (!S.Value.isVar()) {
      NodeId N = allocAtSite(S.Index, S.Loc, S.Target);
      Store.set(S.Target, N);
      break;
    }
    Store.set(S.Target, eval(S.Value));
    break;
  }
  case StmtKind::BinOp: {
    std::set<NodeId> L1 = eval(S.LHS);
    std::set<NodeId> L2 = eval(S.RHS);
    // The async lowering's `x := x promise-join %p` is an alias join, not
    // a value computation: x may be the original promise object or the
    // model object carrying the settled `%promise` property. A fresh node
    // here would sever the property lookup the await/then suspension
    // reads through.
    if (S.Async == core::AsyncRole::PromiseJoin) {
      L1.insert(L2.begin(), L2.end());
      Store.set(S.Target, std::move(L1));
      break;
    }
    NodeId N = allocAtSite(S.Index, S.Loc, S.Target);
    for (NodeId L : L1)
      G->addEdge(L, N, EdgeKind::Dep);
    for (NodeId L : L2)
      G->addEdge(L, N, EdgeKind::Dep);
    Store.set(S.Target, N);
    break;
  }
  case StmtKind::UnOp: {
    std::set<NodeId> L = eval(S.Value);
    NodeId N = allocAtSite(S.Index, S.Loc, S.Target);
    for (NodeId V : L)
      G->addEdge(V, N, EdgeKind::Dep);
    Store.set(S.Target, N);
    break;
  }
  case StmtKind::NewObject: {
    // A linked local require binds the required module's exports object.
    if (!S.RequireModule.empty() && !ModuleExports.empty()) {
      NodeId E = lookupModuleExports(S.RequireModule);
      if (E != InvalidNode) {
        Store.set(S.Target, E);
        break;
      }
    }
    NodeId N = allocAtSite(S.Index, S.Loc, S.Target);
    Store.set(S.Target, N);
    break;
  }
  case StmtKind::FuncDef: {
    NodeId N = allocAtSite(S.Index, S.Loc, S.Func->Name);
    FuncOfNode[N] = S.Func.get();
    FuncNodeByName[S.Func->Name] = N;
    Store.set(S.Target, N);
    break;
  }
  case StmtKind::StaticLookup: {
    std::set<NodeId> Objs = evalValue(S.Obj, S.Index, S.Loc);
    Symbol P = Result->Props.intern(S.Prop);
    std::set<NodeId> Out;
    for (NodeId L : Objs) {
      std::set<NodeId> R = ensureProperty(L, P, S.Index, S.Loc);
      Out.insert(R.begin(), R.end());
    }
    Store.set(S.Target, std::move(Out));
    break;
  }
  case StmtKind::DynamicLookup: {
    // A statically-known index (o["x"], a[0]) is a static lookup.
    if (S.PropOperand.K == Operand::Kind::String ||
        S.PropOperand.K == Operand::Kind::Number) {
      std::set<NodeId> Objs = evalValue(S.Obj, S.Index, S.Loc);
      std::string Name = S.PropOperand.K == Operand::Kind::String
                             ? S.PropOperand.Name
                             : S.PropOperand.str();
      Symbol P = Result->Props.intern(Name);
      std::set<NodeId> Out;
      for (NodeId L : Objs) {
        std::set<NodeId> R = ensureProperty(L, P, S.Index, S.Loc);
        Out.insert(R.begin(), R.end());
      }
      Store.set(S.Target, std::move(Out));
      break;
    }
    std::set<NodeId> Objs = evalValue(S.Obj, S.Index, S.Loc);
    std::set<NodeId> NameLocs = eval(S.PropOperand);
    std::set<NodeId> Out;
    for (NodeId L : Objs) {
      std::set<NodeId> R = ensureUnknownProperty(L, NameLocs, S.Index, S.Loc);
      Out.insert(R.begin(), R.end());
    }
    Store.set(S.Target, std::move(Out));
    break;
  }
  case StmtKind::StaticUpdate: {
    std::set<NodeId> Objs = evalValue(S.Obj, S.Index, S.Loc);
    std::set<NodeId> Vals = evalValue(S.Value, S.Index, S.Loc);
    Symbol P = Result->Props.intern(S.Prop);
    std::vector<NodeId> Vers =
        newVersions(Objs, S.Index, P, /*IsUnknown=*/false, {}, S.Loc);
    for (NodeId V : Vers)
      for (NodeId Val : Vals)
        if (V != Val)
          G->addEdge(V, Val, EdgeKind::Prop, P);
    break;
  }
  case StmtKind::DynamicUpdate: {
    std::set<NodeId> Objs = evalValue(S.Obj, S.Index, S.Loc);
    std::set<NodeId> Vals = evalValue(S.Value, S.Index, S.Loc);
    if (S.PropOperand.K == Operand::Kind::String ||
        S.PropOperand.K == Operand::Kind::Number) {
      std::string Name = S.PropOperand.K == Operand::Kind::String
                             ? S.PropOperand.Name
                             : S.PropOperand.str();
      Symbol P = Result->Props.intern(Name);
      std::vector<NodeId> Vers =
          newVersions(Objs, S.Index, P, /*IsUnknown=*/false, {}, S.Loc);
      for (NodeId V : Vers)
        for (NodeId Val : Vals)
          if (V != Val)
            G->addEdge(V, Val, EdgeKind::Prop, P);
      break;
    }
    std::set<NodeId> NameLocs = eval(S.PropOperand);
    std::vector<NodeId> Vers =
        newVersions(Objs, S.Index, 0, /*IsUnknown=*/true, NameLocs, S.Loc);
    for (NodeId V : Vers)
      for (NodeId Val : Vals)
        if (V != Val)
          G->addEdge(V, Val, EdgeKind::PropUnknown);
    break;
  }
  case StmtKind::Call:
    analyzeCall(S);
    break;
  case StmtKind::Return: {
    if (!CurrentFunction.empty()) {
      std::set<NodeId> L = eval(S.Value);
      ReturnSummaries[CurrentFunction.back()].insert(L.begin(), L.end());
    }
    break;
  }
  case StmtKind::If: {
    AbstractStore Base = Store;
    analyzeBlock(S.Then);
    AbstractStore AfterThen = Store;
    Store = std::move(Base);
    analyzeBlock(S.Else);
    Store.joinWith(AfterThen);
    break;
  }
  case StmtKind::While:
    fixpoint(S.Body);
    break;
  case StmtKind::Nop:
    break;
  }
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

void MDGBuilder::analyzeCall(const core::Stmt &S) {
  std::set<NodeId> CalleeLocs = eval(S.Callee);

  // Allocate (or reuse) the call node f_i.
  NodeId CallNode;
  auto It = CallAlloc.find(S.Index);
  if (It != CallAlloc.end()) {
    CallNode = It->second;
  } else {
    CallNode = G->addNode(NodeKind::Call, S.Index, S.Loc,
                          S.CalleeName.empty() ? "call" : S.CalleeName);
    Node &CN = G->node(CallNode);
    CN.CallName = S.CalleeName;
    CN.CallPath = S.CalleePath;
    CallAlloc[S.Index] = CallNode;
    Result->CallNodes.push_back(CallNode);
  }

  // Argument dependencies: every argument location flows into the call.
  std::vector<std::set<NodeId>> ArgLocs;
  for (const Operand &A : S.Args) {
    std::set<NodeId> L = eval(A);
    for (NodeId N : L)
      G->addEdge(N, CallNode, EdgeKind::Dep);
    ArgLocs.push_back(std::move(L));
  }
  {
    Node &CN = G->node(CallNode);
    if (CN.Args.size() < ArgLocs.size())
      CN.Args.resize(ArgLocs.size());
    for (size_t I = 0; I < ArgLocs.size(); ++I)
      for (NodeId N : ArgLocs[I])
        if (std::find(CN.Args[I].begin(), CN.Args[I].end(), N) ==
            CN.Args[I].end())
          CN.Args[I].push_back(N);
  }

  std::set<NodeId> ReceiverLocs =
      S.Receiver.isVar() ? eval(S.Receiver) : std::set<NodeId>();
  // A method call's result may derive from its receiver (`prop.split('.')`
  // returns data from `prop`), so the receiver flows into the call node.
  for (NodeId RL : ReceiverLocs)
    G->addEdge(RL, CallNode, EdgeKind::Dep);

  // Sanitizer barrier (§6): the result is a fresh, dependency-free value.
  if (!Options.Sanitizers.empty() &&
      (Options.Sanitizers.count(S.CalleeName) ||
       Options.Sanitizers.count(S.CalleePath))) {
    auto RIt = RetAlloc.find(S.Index);
    NodeId Ret = RIt != RetAlloc.end()
                     ? RIt->second
                     : (RetAlloc[S.Index] = G->addNode(
                            NodeKind::Object, S.Index, S.Loc, S.Target));
    Store.set(S.Target, Ret);
    return;
  }

  if (tryBuiltinCall(S, CallNode, ArgLocs, ReceiverLocs))
    return;

  // Return value: known callees contribute their return summaries; unknown
  // callees produce a value depending on the call node itself.
  std::set<NodeId> RetLocs;
  bool AnyKnown = false;

  // `new F(...)`: the constructed object is the receiver of the callee.
  NodeId NewObj = InvalidNode;
  if (S.IsNew) {
    auto RIt = RetAlloc.find(S.Index);
    NewObj = RIt != RetAlloc.end()
                 ? RIt->second
                 : (RetAlloc[S.Index] = G->addNode(NodeKind::Object, S.Index,
                                                   S.Loc, S.Target));
    G->addEdge(CallNode, NewObj, EdgeKind::Dep);
    ReceiverLocs = {NewObj};
  }

  for (NodeId CL : CalleeLocs) {
    auto FIt = FuncOfNode.find(CL);
    if (FIt == FuncOfNode.end())
      continue;
    AnyKnown = true;
    analyzeFunctionInline(*FIt->second, ArgLocs, ReceiverLocs);
    const std::set<NodeId> &Summary = ReturnSummaries[FIt->second->Name];
    RetLocs.insert(Summary.begin(), Summary.end());
  }

  if (S.IsNew) {
    Store.set(S.Target, NewObj);
  } else if (!AnyKnown || RetLocs.empty()) {
    auto RIt = RetAlloc.find(S.Index);
    NodeId Ret = RIt != RetAlloc.end()
                     ? RIt->second
                     : (RetAlloc[S.Index] = G->addNode(
                            NodeKind::Object, S.Index, S.Loc, S.Target));
    G->addEdge(CallNode, Ret, EdgeKind::Dep);
    RetLocs.insert(Ret);
    Store.set(S.Target, std::move(RetLocs));
  } else {
    Store.set(S.Target, std::move(RetLocs));
  }

  // Callback arguments: a function value passed to an unknown callee may be
  // invoked with attacker-influenced data only through the call node; we
  // additionally analyze locally-defined callbacks so their bodies appear
  // in the graph (their params depend on the call node).
  if (!AnyKnown) {
    for (size_t I = 0; I < ArgLocs.size(); ++I) {
      for (NodeId AL : ArgLocs[I]) {
        auto FIt = FuncOfNode.find(AL);
        if (FIt == FuncOfNode.end())
          continue;
        const core::Function &CB = *FIt->second;
        std::vector<std::set<NodeId>> CBArgs;
        for (const std::string &Param : CB.Params) {
          std::string Key = CB.Name + ":" + Param;
          auto PIt = ParamAlloc.find(Key);
          NodeId P = PIt != ParamAlloc.end()
                         ? PIt->second
                         : (ParamAlloc[Key] = G->addNode(
                                NodeKind::Object, 0, CB.Loc, Param));
          G->addEdge(CallNode, P, EdgeKind::Dep);
          CBArgs.push_back({P});
        }
        analyzeFunctionInline(CB, CBArgs, {});
      }
    }
  }
}

bool MDGBuilder::tryBuiltinCall(const core::Stmt &S, NodeId CallNode,
                                const std::vector<std::set<NodeId>> &ArgLocs,
                                const std::set<NodeId> &ReceiverLocs) {
  const std::string &Path = S.CalleePath;
  const std::string &Name = S.CalleeName;

  // Every modeled builtin still materializes the unknown-call return node
  // with its D edge, so the abstraction function α stays aligned with the
  // concrete semantics (which tags builtin results through the call site).
  auto EnsureRet = [&]() {
    auto RIt = RetAlloc.find(S.Index);
    NodeId Ret = RIt != RetAlloc.end()
                     ? RIt->second
                     : (RetAlloc[S.Index] = G->addNode(
                            NodeKind::Object, S.Index, S.Loc, S.Target));
    G->addEdge(CallNode, Ret, EdgeKind::Dep);
    return Ret;
  };

  // Object.assign(target, ...sources): a merge. The target gets a new
  // version with unknown-property edges to every source's property
  // values — dynamic source keys may overwrite anything, which is
  // exactly the Object.assign pollution shape.
  if (Path == "Object.assign" && !ArgLocs.empty()) {
    std::set<NodeId> SourceLocs;
    for (size_t I = 1; I < ArgLocs.size(); ++I)
      SourceLocs.insert(ArgLocs[I].begin(), ArgLocs[I].end());
    std::vector<NodeId> Vers = newVersions(
        ArgLocs[0], S.Index, 0, /*IsUnknown=*/true, SourceLocs, S.Loc);
    for (NodeId V : Vers) {
      for (NodeId Src : SourceLocs) {
        // Copy the sources' (unknown) property values into the target.
        std::vector<NodeId> Values = G->resolveUnknownProperty(Src);
        for (NodeId Val : Values)
          if (V != Val)
            G->addEdge(V, Val, EdgeKind::PropUnknown);
        if (V != Src)
          G->addEdge(Src, V, EdgeKind::Dep);
      }
    }
    EnsureRet();
    // Object.assign returns the target.
    Store.set(S.Target, std::set<NodeId>(Vers.begin(), Vers.end()));
    return true;
  }

  // Object.create(proto) / Object.freeze(o): passthrough-ish results.
  if (Path == "Object.freeze" || Path == "Object.create") {
    if (!ArgLocs.empty() && !ArgLocs[0].empty()) {
      EnsureRet();
      Store.set(S.Target, ArgLocs[0]);
      return true;
    }
    return false;
  }

  // Mutating array methods: arr.push(x) etc. add elements — an
  // unknown-property update of the receiver with the argument values.
  if ((Name == "push" || Name == "unshift" || Name == "fill" ||
       Name == "splice") &&
      !ReceiverLocs.empty()) {
    std::set<NodeId> Values;
    for (const std::set<NodeId> &A : ArgLocs)
      Values.insert(A.begin(), A.end());
    if (Values.empty())
      return false;
    std::vector<NodeId> Vers = newVersions(ReceiverLocs, S.Index, 0,
                                           /*IsUnknown=*/true, {}, S.Loc);
    for (NodeId V : Vers)
      for (NodeId Val : Values)
        if (V != Val)
          G->addEdge(V, Val, EdgeKind::PropUnknown);
    // push returns the new length: a value derived from the call.
    Store.set(S.Target, EnsureRet());
    return true;
  }

  return false;
}

void MDGBuilder::analyzeFunctionInline(
    const core::Function &Fn, const std::vector<std::set<NodeId>> &ArgLocs,
    const std::set<NodeId> &ReceiverLocs) {
  // Bind parameters (weak join: different call sites accumulate). This
  // happens *before* the recursion check: a recursive call site must fold
  // its arguments into the parameters so the enclosing fixpoint re-analyzes
  // the body with them — deep-merge-style pollution (merge(target[key],
  // source[key])) is only visible on that second pass.
  for (size_t I = 0; I < Fn.Params.size(); ++I) {
    if (I < ArgLocs.size())
      Store.join(Fn.Params[I], ArgLocs[I]);
    else
      Store.join(Fn.Params[I], {});
  }
  if (!ReceiverLocs.empty())
    Store.join("this", ReceiverLocs);

  // Recursion: rely on the current summary; the enclosing fixpoint loop
  // re-analyzes until the summary stabilizes.
  if (std::find(InlineStack.begin(), InlineStack.end(), Fn.Name) !=
      InlineStack.end())
    return;
  if (InlineStack.size() >= Options.MaxInlineDepth)
    return;

  InlineStack.push_back(Fn.Name);
  CurrentFunction.push_back(Fn.Name);

  // Analyze the body to a fixpoint: a second pass is cheap (allocations
  // are memoized) and makes direct recursion converge.
  fixpoint(Fn.Body);

  CurrentFunction.pop_back();
  InlineStack.pop_back();
}
