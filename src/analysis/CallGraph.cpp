//===- analysis/CallGraph.cpp - Static call graph over Core IR ------------==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
// Resolution mirrors the MDG builder's flat, store-based inlining: the
// builder binds every name (params included) in one per-module abstract
// store, so this pass resolves a callee variable only when *every*
// assignment to that name, anywhere in the module, binds a known
// function value. Anything weaker goes to Unresolved — unless no
// function value escapes into the heap at all, in which case the
// builder provably has no function node behind the callee and the call
// is a faithful External (unknown-call) site.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>
#include <sstream>

namespace gjs {
namespace analysis {

using core::Operand;
using core::Program;
using core::Stmt;
using core::StmtKind;
using core::StmtPtr;

const char *calleeKindName(CalleeKind K) {
  switch (K) {
  case CalleeKind::Resolved:
    return "resolved";
  case CalleeKind::External:
    return "external";
  case CalleeKind::Unresolved:
    return "unresolved";
  }
  return "?";
}

namespace {

/// Same stem rule as MDGBuilder: basename without a trailing ".js".
std::string moduleStem(const std::string &Name) {
  std::string S = Name;
  size_t Slash = S.find_last_of('/');
  if (Slash != std::string::npos)
    S = S.substr(Slash + 1);
  if (S.size() > 3 && S.compare(S.size() - 3, 3, ".js") == 0)
    S = S.substr(0, S.size() - 3);
  return S;
}

/// Splits a require-alias value ("./helpers.foo", "child_process.exec")
/// into the module part and the remaining member chain. The leading
/// "./" / "../" prefixes belong to the module, not the chain.
void splitAlias(const std::string &Alias, std::string &Module,
                std::string &Member) {
  size_t Start = 0;
  while (Start + 1 < Alias.size() &&
         (Alias.compare(Start, 2, "./") == 0 ||
          (Start + 2 < Alias.size() && Alias.compare(Start, 3, "../") == 0)))
    Start += Alias[Start + 1] == '/' ? 2 : 3;
  size_t Dot = Alias.find('.', Start);
  if (Dot == std::string::npos) {
    Module = Alias;
    Member.clear();
  } else {
    Module = Alias.substr(0, Dot);
    Member = Alias.substr(Dot + 1);
  }
}

} // namespace

class CallGraphBuilder {
public:
  CallGraphBuilder(CallGraph &CG,
                   const std::vector<const Program *> &Modules,
                   const std::vector<std::string> &Stems, bool Fallback,
                   const ModuleLinkInfo *Link)
      : CG(CG), Modules(Modules), Stems(Stems), Fallback(Fallback),
        Link(Link && !Link->empty() ? Link : nullptr) {}

  void run() {
    registerFunctions();
    for (size_t M = 0; M < Modules.size(); ++M)
      analyzeModule(M);
    CG.computeSCCs();
  }

private:
  CallGraph &CG;
  const std::vector<const Program *> &Modules;
  const std::vector<std::string> &Stems;
  bool Fallback;
  const ModuleLinkInfo *Link; ///< null for single-package builds

  /// Per-module flat binding environment (mirrors the builder's flat
  /// per-module store).
  struct ModuleEnv {
    std::map<std::string, std::set<FuncId>> Binds;
    std::set<std::string> Poisoned;
    /// Names used (read or assigned) per function, to derive the shared
    /// set: a name appearing in two functions is shared module state
    /// under the builder's flat store.
    std::map<std::string, std::set<FuncId>> UsedBy;
  };

  std::vector<FuncId> ToplevelOf; // per module

  FuncId addFunction(CGFunction F) {
    FuncId Id = static_cast<FuncId>(CG.Funcs.size());
    CG.ByName[F.Name] = Id;
    CG.Funcs.push_back(std::move(F));
    return Id;
  }

  void registerFunctions() {
    for (size_t M = 0; M < Modules.size(); ++M) {
      CGFunction Top;
      Top.Name = "<toplevel:" + (M < Stems.size() ? Stems[M]
                                                  : std::to_string(M)) + ">";
      Top.ModuleIndex = M;
      Top.IsToplevel = true;
      ToplevelOf.push_back(addFunction(std::move(Top)));

      for (const auto &[Name, Fn] : Modules[M]->Functions) {
        CGFunction F;
        F.Name = Name;
        F.Fn = Fn.get();
        F.ModuleIndex = M;
        addFunction(std::move(F));
      }

      // Entry points: exported functions, else every function — the
      // exact markEntryPoints rule.
      std::set<std::string> Entries;
      for (const core::ExportEntry &E : Modules[M]->Exports)
        if (!E.FunctionName.empty() &&
            Modules[M]->Functions.count(E.FunctionName))
          Entries.insert(E.FunctionName);
      if (Entries.empty() && Fallback)
        for (const auto &[Name, Fn] : Modules[M]->Functions)
          Entries.insert(Name);
      for (const std::string &E : Entries)
        CG.Funcs[CG.ByName.at(E)].IsEntry = true;

      // Class methods are invoked through instances the builder wires
      // up behind `new`: treat them as escaped roots.
      for (const auto &[Var, Methods] : Modules[M]->ClassMethodsByVar)
        for (const std::string &Name : Methods)
          if (auto It = CG.ByName.find(Name); It != CG.ByName.end()) {
            CG.Funcs[It->second].IsEscaped = true;
            CG.AnyEscape = true;
          }
    }
  }

  // --- environment construction --------------------------------------------

  void collectEnv(const std::vector<StmtPtr> &Block, FuncId Owner,
                  ModuleEnv &Env) {
    for (const StmtPtr &SP : Block) {
      const Stmt &S = *SP;
      if (!S.Target.empty())
        Env.UsedBy[S.Target].insert(Owner);
      forEachReadVar(S, [&](const std::string &N) {
        Env.UsedBy[N].insert(Owner);
      });

      switch (S.K) {
      case StmtKind::FuncDef:
        if (S.Func)
          if (auto It = CG.ByName.find(S.Func->Name); It != CG.ByName.end())
            Env.Binds[S.Target].insert(It->second);
        break;
      case StmtKind::Assign:
        // Copy chains resolved in the fixpoint below; literal RHS poisons.
        if (!S.Value.isVar())
          Env.Poisoned.insert(S.Target);
        break;
      default:
        if (!S.Target.empty())
          Env.Poisoned.insert(S.Target);
        break;
      }

      if (S.Func) {
        FuncId Nested = CG.ByName.count(S.Func->Name)
                            ? CG.ByName.at(S.Func->Name)
                            : Owner;
        for (const std::string &P : S.Func->Params) {
          Env.Poisoned.insert(P); // flat store: params poison the name
          Env.UsedBy[P].insert(Nested);
        }
        collectEnv(S.Func->Body, Nested, Env);
      }
      collectEnv(S.Then, Owner, Env);
      collectEnv(S.Else, Owner, Env);
      collectEnv(S.Body, Owner, Env);
    }
  }

  bool resolvable(const ModuleEnv &Env, const std::string &N) const {
    if (Env.Poisoned.count(N))
      return false;
    auto It = Env.Binds.find(N);
    return It != Env.Binds.end() && !It->second.empty();
  }

  /// Propagates copy chains (`x := y`) until stable: x inherits y's
  /// function bindings; a copy from a poisoned or unbound name poisons x.
  void propagateCopies(const std::vector<StmtPtr> &Block, ModuleEnv &Env,
                       bool &Changed) {
    for (const StmtPtr &SP : Block) {
      const Stmt &S = *SP;
      if (S.K == StmtKind::Assign && S.Value.isVar()) {
        const std::string &Src = S.Value.Name;
        if (Env.Poisoned.count(Src) && !Env.Poisoned.count(S.Target)) {
          Env.Poisoned.insert(S.Target);
          Changed = true;
        }
        if (auto It = Env.Binds.find(Src); It != Env.Binds.end()) {
          auto &Dst = Env.Binds[S.Target];
          size_t Before = Dst.size();
          Dst.insert(It->second.begin(), It->second.end());
          if (Dst.size() != Before)
            Changed = true;
        }
      }
      if (S.Func)
        propagateCopies(S.Func->Body, Env, Changed);
      propagateCopies(S.Then, Env, Changed);
      propagateCopies(S.Else, Env, Changed);
      propagateCopies(S.Body, Env, Changed);
    }
  }

  /// Marks function values that flow somewhere the resolver cannot see
  /// again: heap stores, call arguments, returns.
  void collectEscapes(const std::vector<StmtPtr> &Block, ModuleEnv &Env) {
    auto Escape = [&](const Operand &O) {
      if (!O.isVar())
        return;
      auto It = Env.Binds.find(O.Name);
      if (It == Env.Binds.end())
        return;
      for (FuncId F : It->second)
        if (!CG.Funcs[F].IsEscaped) {
          CG.Funcs[F].IsEscaped = true;
          CG.AnyEscape = true;
        }
    };
    for (const StmtPtr &SP : Block) {
      const Stmt &S = *SP;
      switch (S.K) {
      case StmtKind::StaticUpdate:
      case StmtKind::DynamicUpdate:
        Escape(S.Value);
        break;
      case StmtKind::Call:
        for (const Operand &A : S.Args)
          Escape(A);
        break;
      case StmtKind::Return:
        Escape(S.Value);
        break;
      default:
        break;
      }
      if (S.Func)
        collectEscapes(S.Func->Body, Env);
      collectEscapes(S.Then, Env);
      collectEscapes(S.Else, Env);
      collectEscapes(S.Body, Env);
    }
  }

  /// A function bound to a name that also carries unknown values is
  /// callable through that name in the builder's store even though the
  /// resolver must give up on it: such functions escape too.
  void escapePoisonedBindings(ModuleEnv &Env) {
    for (const auto &[Name, Binds] : Env.Binds) {
      if (!Env.Poisoned.count(Name))
        continue;
      for (FuncId F : Binds)
        if (!CG.Funcs[F].IsEscaped) {
          CG.Funcs[F].IsEscaped = true;
          CG.AnyEscape = true;
        }
    }
  }

  // --- call classification --------------------------------------------------

  void analyzeModule(size_t M) {
    const Program &Prog = *Modules[M];
    ModuleEnv Env;
    collectEnv(Prog.TopLevel, ToplevelOf[M], Env);
    bool Changed = true;
    for (int Iter = 0; Changed && Iter < 16; ++Iter) {
      Changed = false;
      propagateCopies(Prog.TopLevel, Env, Changed);
    }
    collectEscapes(Prog.TopLevel, Env);
    escapePoisonedBindings(Env);

    // Free reads / captured locals per function, from the usage map.
    recordSharing(M, Env);

    classifyBlock(Prog.TopLevel, ToplevelOf[M], M, Env);
  }

  void recordSharing(size_t M, const ModuleEnv &Env) {
    for (const auto &[Name, Users] : Env.UsedBy) {
      if (Users.size() < 2)
        continue;
      for (FuncId F : Users) {
        CGFunction &Fn = CG.Funcs[F];
        if (Fn.ModuleIndex != M)
          continue;
        // Shared with another function: a free read from this side, a
        // captured local from the assigning side. Flat-store sharing
        // makes the distinction soft; record under both views.
        Fn.FreeReads.push_back(Name);
        Fn.CapturedLocals.push_back(Name);
      }
    }
  }

  void classifyBlock(const std::vector<StmtPtr> &Block, FuncId Owner,
                     size_t M, const ModuleEnv &Env) {
    for (const StmtPtr &SP : Block) {
      const Stmt &S = *SP;
      if (S.K == StmtKind::Call)
        classifyCall(S, Owner, M, Env);
      if (S.Func) {
        FuncId Nested = CG.ByName.count(S.Func->Name)
                            ? CG.ByName.at(S.Func->Name)
                            : Owner;
        classifyBlock(S.Func->Body, Nested, M, Env);
      }
      classifyBlock(S.Then, Owner, M, Env);
      classifyBlock(S.Else, Owner, M, Env);
      classifyBlock(S.Body, Owner, M, Env);
    }
  }

  void classifyCall(const Stmt &S, FuncId Owner, size_t M,
                    const ModuleEnv &Env) {
    CallSite Site;
    Site.Index = S.Index;
    Site.Loc = S.Loc;
    Site.CalleeName = S.CalleeName;
    Site.CalleePath = S.CalleePath;
    Site.Caller = Owner;
    Site.NumArgs = static_cast<unsigned>(S.Args.size());
    Site.IsNew = S.IsNew;
    Site.IsReaction = S.Async == core::AsyncRole::ReactionCall;

    const Program &Prog = *Modules[M];
    std::string AliasTarget;
    if (S.Callee.isVar()) {
      const std::string &N = S.Callee.Name;
      if (resolvable(Env, N)) {
        Site.Kind = CalleeKind::Resolved;
        const auto &T = Env.Binds.at(N);
        Site.Targets.assign(T.begin(), T.end());
      } else if (auto It = Prog.RequireAliases.find(N);
                 It != Prog.RequireAliases.end()) {
        AliasTarget = It->second;
      } else if (S.Receiver.isVar()) {
        if (auto RIt = Prog.RequireAliases.find(S.Receiver.Name);
            RIt != Prog.RequireAliases.end())
          AliasTarget = RIt->second + "." + S.CalleeName;
      }
      if (Site.Kind != CalleeKind::Resolved && !AliasTarget.empty()) {
        classifyAlias(Site, AliasTarget, M);
      } else if (Site.Kind != CalleeKind::Resolved) {
        // Poisoned local, parameter, lookup temp or unbound global. If
        // no function value escapes, the builder's store provably holds
        // no function node here either: a faithful unknown call.
        Site.Kind =
            CG.AnyEscape ? CalleeKind::Unresolved : CalleeKind::External;
      }
    } else {
      Site.Kind = CalleeKind::Unresolved;
    }

    // Function values passed as arguments to calls that may invoke them
    // with data we cannot see become callback edges (the builder wires
    // callback params to the call node for unknown callees).
    if (Site.Kind != CalleeKind::Resolved)
      for (const Operand &A : S.Args)
        if (A.isVar())
          if (auto It = Env.Binds.find(A.Name); It != Env.Binds.end())
            for (FuncId F : It->second)
              Site.CallbackArgs.push_back(F);

    size_t SiteIdx = CG.Sites.size();
    CG.Funcs[Owner].Sites.push_back(SiteIdx);
    CG.Sites.push_back(std::move(Site));
  }

  void classifyAlias(CallSite &Site, const std::string &Alias, size_t M) {
    std::string Module, Member;
    splitAlias(Alias, Module, Member);
    std::string Stem = moduleStem(Module);
    size_t Sibling = Modules.size();
    if (Link) {
      // Dependency-tree build: the soundness valve first — a require of a
      // missing/unparseable dependency (or of a file that failed to parse)
      // is code that could do anything.
      if (Link->ForceUnresolved.count(Module) ||
          Link->ForceUnresolved.count(Stem)) {
        Site.Kind = CalleeKind::Unresolved;
        return;
      }
      bool Relative = !Module.empty() && Module[0] == '.';
      if (!Relative)
        if (auto It = Link->MainModuleOf.find(Module);
            It != Link->MainModuleOf.end() && It->second != M)
          Sibling = It->second;
      if (Sibling == Modules.size()) {
        // Within the owning package: same sibling-stem rule, scoped so two
        // packages' internal `lib.js` files cannot cross-link.
        const std::string &Pkg =
            M < Link->PkgOf.size() ? Link->PkgOf[M] : Stems[M];
        for (size_t I = 0; I < Modules.size(); ++I)
          if (I != M && I < Stems.size() && Stems[I] == Stem &&
              (I >= Link->PkgOf.size() || Link->PkgOf[I] == Pkg)) {
            Sibling = I;
            break;
          }
      }
    } else {
      for (size_t I = 0; I < Modules.size(); ++I)
        if (I != M && I < Stems.size() && Stems[I] == Stem) {
          Sibling = I;
          break;
        }
    }
    if (Sibling == Modules.size()) {
      Site.Kind = CalleeKind::External;
      return;
    }
    // A sibling module: resolve the member through its exports; any
    // miss (deep chains, unknown member, whole-module call) means the
    // builder may still find a function behind the exports object.
    if (Member.find('.') == std::string::npos && !Member.empty()) {
      for (const core::ExportEntry &E : Modules[Sibling]->Exports)
        if (E.ExportName == Member && !E.FunctionName.empty())
          if (auto It = CG.ByName.find(E.FunctionName); It != CG.ByName.end()) {
            Site.Kind = CalleeKind::Resolved;
            Site.Targets.push_back(It->second);
            return;
          }
    }
    Site.Kind = CalleeKind::Unresolved;
  }

  /// Read-operand visitor (excludes the callee variable itself, which
  /// is classified separately; includes args/receiver).
  template <typename FnT> void forEachReadVar(const Stmt &S, FnT Fn) {
    auto Visit = [&](const Operand &O) {
      if (O.isVar())
        Fn(O.Name);
    };
    Visit(S.Obj);
    Visit(S.PropOperand);
    Visit(S.Value);
    Visit(S.LHS);
    Visit(S.RHS);
    Visit(S.Receiver);
    Visit(S.Cond);
    for (const Operand &A : S.Args)
      Visit(A);
  }
};

CallGraph CallGraph::build(const std::vector<const Program *> &Modules,
                           const std::vector<std::string> &Stems,
                           bool FallbackAllFunctionsExported,
                           const ModuleLinkInfo *Link) {
  CallGraph CG;
  CallGraphBuilder B(CG, Modules, Stems, FallbackAllFunctionsExported, Link);
  B.run();
  return CG;
}

CallGraph CallGraph::build(const Program &Prog,
                           bool FallbackAllFunctionsExported) {
  std::vector<const Program *> Modules = {&Prog};
  std::vector<std::string> Stems = {"<main>"};
  return build(Modules, Stems, FallbackAllFunctionsExported);
}

FuncId CallGraph::functionByName(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? InvalidFuncId : It->second;
}

std::vector<FuncId> CallGraph::entryFunctions() const {
  std::vector<FuncId> Out;
  for (FuncId I = 0; I < Funcs.size(); ++I)
    if (Funcs[I].IsEntry)
      Out.push_back(I);
  return Out;
}

std::vector<bool> CallGraph::reachableFromRoots() const {
  std::vector<bool> Reach(Funcs.size(), false);
  std::vector<FuncId> Work;
  auto Push = [&](FuncId F) {
    if (F < Funcs.size() && !Reach[F]) {
      Reach[F] = true;
      Work.push_back(F);
    }
  };
  for (FuncId I = 0; I < Funcs.size(); ++I)
    if (Funcs[I].IsEntry || Funcs[I].IsToplevel || Funcs[I].IsEscaped)
      Push(I);
  while (!Work.empty()) {
    FuncId F = Work.back();
    Work.pop_back();
    for (size_t SI : Funcs[F].Sites) {
      const CallSite &S = Sites[SI];
      for (FuncId T : S.Targets)
        Push(T);
      for (FuncId T : S.CallbackArgs)
        Push(T);
    }
  }
  return Reach;
}

size_t CallGraph::numResolvedEdges() const {
  size_t N = 0;
  for (const CallSite &S : Sites)
    if (S.Kind == CalleeKind::Resolved)
      N += S.Targets.size();
  return N;
}

size_t CallGraph::numExternalSites() const {
  size_t N = 0;
  for (const CallSite &S : Sites)
    N += S.Kind == CalleeKind::External;
  return N;
}

size_t CallGraph::numUnresolvedSites() const {
  size_t N = 0;
  for (const CallSite &S : Sites)
    N += S.Kind == CalleeKind::Unresolved;
  return N;
}

size_t CallGraph::numReactionSites() const {
  size_t N = 0;
  for (const CallSite &S : Sites)
    N += S.IsReaction;
  return N;
}

size_t CallGraph::numUnresolvedCallbacks() const {
  size_t N = 0;
  for (const CallSite &S : Sites)
    if (S.Kind != CalleeKind::Resolved)
      N += S.CallbackArgs.size();
  return N;
}

// Iterative Tarjan over the resolved + callback edges. Tarjan pops each
// SCC only after every SCC it reaches has been popped, which is exactly
// the reverse topological (callees-first) order the summary pass needs.
void CallGraph::computeSCCs() {
  SCCs.clear();
  const unsigned N = static_cast<unsigned>(Funcs.size());
  std::vector<unsigned> Idx(N, 0), Low(N, 0);
  std::vector<bool> OnStack(N, false), Visited(N, false);
  std::vector<FuncId> Stack;
  unsigned Next = 1;

  // Successor list per function.
  auto Succs = [&](FuncId F) {
    std::vector<FuncId> Out;
    for (size_t SI : Funcs[F].Sites) {
      const CallSite &S = Sites[SI];
      Out.insert(Out.end(), S.Targets.begin(), S.Targets.end());
      Out.insert(Out.end(), S.CallbackArgs.begin(), S.CallbackArgs.end());
    }
    return Out;
  };

  struct Frame {
    FuncId F;
    std::vector<FuncId> S;
    size_t Child = 0;
  };

  for (FuncId Root = 0; Root < N; ++Root) {
    if (Visited[Root])
      continue;
    std::vector<Frame> Frames;
    Frames.push_back({Root, Succs(Root)});
    Visited[Root] = true;
    Idx[Root] = Low[Root] = Next++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!Frames.empty()) {
      Frame &Top = Frames.back();
      if (Top.Child < Top.S.size()) {
        FuncId C = Top.S[Top.Child++];
        if (!Visited[C]) {
          Visited[C] = true;
          Idx[C] = Low[C] = Next++;
          Stack.push_back(C);
          OnStack[C] = true;
          Frames.push_back({C, Succs(C)});
        } else if (OnStack[C]) {
          Low[Top.F] = std::min(Low[Top.F], Idx[C]);
        }
        continue;
      }
      FuncId F = Top.F;
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().F] = std::min(Low[Frames.back().F], Low[F]);
      if (Low[F] == Idx[F]) {
        std::vector<FuncId> SCC;
        for (;;) {
          FuncId V = Stack.back();
          Stack.pop_back();
          OnStack[V] = false;
          SCC.push_back(V);
          if (V == F)
            break;
        }
        SCCs.push_back(std::move(SCC));
      }
    }
  }
}

std::string CallGraph::dumpText() const {
  std::ostringstream OS;
  OS << "call graph: " << Funcs.size() << " functions, " << Sites.size()
     << " call sites (" << numResolvedEdges() << " resolved edges, "
     << numExternalSites() << " external, " << numUnresolvedSites()
     << " unresolved)\n";
  if (size_t R = numReactionSites())
    OS << "  async: " << R << " reaction sites, " << numUnresolvedCallbacks()
       << " unresolved callbacks (soundness valve)\n";
  for (FuncId I = 0; I < Funcs.size(); ++I) {
    const CGFunction &F = Funcs[I];
    OS << "  " << F.Name;
    if (F.IsEntry)
      OS << " [entry]";
    if (F.IsEscaped)
      OS << " [escaped]";
    if (F.Fn && !F.Fn->Params.empty()) {
      OS << " (";
      for (size_t P = 0; P < F.Fn->Params.size(); ++P)
        OS << (P ? ", " : "") << F.Fn->Params[P];
      OS << ")";
    }
    OS << "\n";
    for (size_t SI : F.Sites) {
      const CallSite &S = Sites[SI];
      OS << "    -> ";
      if (S.Kind == CalleeKind::Resolved) {
        for (size_t T = 0; T < S.Targets.size(); ++T)
          OS << (T ? " | " : "") << Funcs[S.Targets[T]].Name;
      } else {
        OS << (S.CalleePath.empty() ? S.CalleeName : S.CalleePath);
        OS << " [" << calleeKindName(S.Kind) << "]";
      }
      for (FuncId CB : S.CallbackArgs)
        OS << " +callback:" << Funcs[CB].Name;
      OS << "\n";
    }
  }
  OS << "scc order (callees first):";
  for (const auto &SCC : SCCs) {
    OS << " {";
    for (size_t I = 0; I < SCC.size(); ++I)
      OS << (I ? " " : "") << Funcs[SCC[I]].Name;
    OS << "}";
  }
  OS << "\n";
  return OS.str();
}

std::string CallGraph::toDot() const {
  std::ostringstream OS;
  OS << "digraph callgraph {\n  rankdir=LR;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n";
  for (FuncId I = 0; I < Funcs.size(); ++I) {
    const CGFunction &F = Funcs[I];
    OS << "  f" << I << " [label=\"" << F.Name << "\"";
    if (F.IsEntry)
      OS << ", style=filled, fillcolor=lightblue";
    else if (F.IsToplevel)
      OS << ", style=dashed";
    OS << "];\n";
  }
  bool AnyExternal = false, AnyUnresolved = false;
  for (const CallSite &S : Sites) {
    AnyExternal |= S.Kind == CalleeKind::External;
    AnyUnresolved |= S.Kind == CalleeKind::Unresolved;
  }
  if (AnyExternal)
    OS << "  external [shape=ellipse, label=\"external\"];\n";
  if (AnyUnresolved)
    OS << "  unresolved [shape=ellipse, label=\"?\", style=filled, "
          "fillcolor=orange];\n";
  for (const CallSite &S : Sites) {
    std::string Label = S.CalleePath.empty() ? S.CalleeName : S.CalleePath;
    switch (S.Kind) {
    case CalleeKind::Resolved:
      for (FuncId T : S.Targets)
        OS << "  f" << S.Caller << " -> f" << T << ";\n";
      break;
    case CalleeKind::External:
      OS << "  f" << S.Caller << " -> external [label=\"" << Label
         << "\"];\n";
      break;
    case CalleeKind::Unresolved:
      OS << "  f" << S.Caller << " -> unresolved [label=\"" << Label
         << "\"];\n";
      break;
    }
    for (FuncId CB : S.CallbackArgs)
      OS << "  f" << S.Caller << " -> f" << CB << " [style=dotted, "
         << "label=\"callback\"];\n";
  }
  OS << "}\n";
  return OS.str();
}

} // namespace analysis
} // namespace gjs
