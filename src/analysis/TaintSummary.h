//===- analysis/TaintSummary.h - Per-function taint summaries ----*- C++ -*-==//
//
// Part of graphjs-cpp (PLDI 2024 MDG reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bottom-up per-function taint summaries over call-graph SCCs, and the
/// pruning decision derived from them. A summary answers, per function:
/// which taint *origins* (parameter indices, or "other" — module/global
/// state and unknown values) can reach each vulnerability class's sinks,
/// the return value, a dynamic property write (prototype-pollution
/// shape), an unresolved call's inputs, or shared module state.
///
/// The lattice is a 64-bit origin mask: bits 0..62 are parameter
/// indices (indices >= 62 collapse into bit 62), bit 63 is the `other`
/// origin. Joins are bitwise-or; every transfer is monotone, so the
/// per-SCC fixpoint converges in at most 64 * |SCC| local passes.
///
/// The sink vocabulary is a plain `SinkTable` (class index -> specs)
/// rather than `queries::SinkConfig`: the queries library links against
/// this one, so the dependency has to point this way. Class indices
/// mirror queries::VulnType order.
///
//===----------------------------------------------------------------------===//

#ifndef GJS_ANALYSIS_TAINTSUMMARY_H
#define GJS_ANALYSIS_TAINTSUMMARY_H

#include "analysis/CallGraph.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gjs {
namespace analysis {

/// Class indices in queries::VulnType order.
constexpr int NumSinkClasses = 4;
constexpr int SinkClassCommandInjection = 0;
constexpr int SinkClassCodeInjection = 1;
constexpr int SinkClassPathTraversal = 2;
constexpr int SinkClassPrototypePollution = 3;

const char *sinkClassTag(int Class); // "CWE-78" etc.

/// One sink pattern: a bare callee name ("exec") or a dotted path
/// ("child_process.exec"), with the argument positions that must carry
/// taint (empty = any argument).
struct SinkTableEntry {
  std::string Name;
  bool IsPath = false;
  std::vector<unsigned> SensitiveArgs;
};

/// The analysis-layer view of a sink configuration (see
/// queries::toSinkTable for the converter).
struct SinkTable {
  std::vector<SinkTableEntry> Classes[NumSinkClasses];
  std::set<std::string> Sanitizers;
};

using OriginMask = uint64_t;
constexpr OriginMask OtherOrigin = 1ull << 63;

inline OriginMask paramBit(unsigned I) { return 1ull << (I < 62 ? I : 62); }
inline OriginMask paramsMask(unsigned NumParams) {
  OriginMask M = 0;
  for (unsigned I = 0; I < NumParams && I <= 62; ++I)
    M |= paramBit(I);
  return M;
}
std::string maskToString(OriginMask M, unsigned NumParams);

/// The per-function summary. Masks are origin sets; `Has*Site` records
/// the *syntactic* presence of a matching site in this function's own
/// body (not composed through callees).
struct FunctionSummary {
  std::string Name;
  unsigned NumParams = 0;
  OriginMask SinkFlow[NumSinkClasses] = {0, 0, 0, 0};
  OriginMask RetFlow = 0;
  OriginMask PolluteFlow = 0;       ///< reaches a dynamic-write operand
  OriginMask UnresolvedArgFlow = 0; ///< reaches an unresolved call's inputs
  OriginMask GlobalWriteFlow = 0;   ///< written to shared module state
  std::vector<OriginMask> MutFlow;  ///< per-param: origins mutated into it
  bool HasSinkSite[NumSinkClasses] = {false, false, false, false};
  bool HasVUSite = false;
  bool CallsUnresolved = false;

  bool operator==(const FunctionSummary &O) const;
};

struct SummarySet {
  /// Parallel to CallGraph::functions().
  std::vector<FunctionSummary> Summaries;
};

/// Computes summaries bottom-up over the call graph's SCC order.
/// Modules must be the same vector the call graph was built from.
SummarySet computeSummaries(const CallGraph &CG,
                            const std::vector<const core::Program *> &Modules,
                            const SinkTable &Sinks);

/// The pruning verdict: per class, whether the query can be skipped and
/// why (or why not). `Prunable[c] == true` is a soundness claim: the
/// MDG detectors cannot report class c for this package.
struct PruneDecision {
  bool Prunable[NumSinkClasses] = {false, false, false, false};
  std::string Reason[NumSinkClasses];

  bool allPruned() const {
    for (bool P : Prunable)
      if (!P)
        return false;
    return true;
  }
  unsigned numPruned() const {
    unsigned N = 0;
    for (bool P : Prunable)
      N += P;
    return N;
  }
  /// Compact "CWE-78:no-sink-callsites,..." rendering for journals.
  std::string str() const;
};

/// \p CodeMissing: the build is a linked dependency tree with packages
/// that could not be located or parsed (ModuleLinkInfo::ForceUnresolved
/// nonempty). Unresolved callees then stand for code absent from the
/// graph, so the unresolved-callee valve takes precedence over the
/// syntactic site checks — "no sink callsites here" proves nothing about
/// code we cannot see. For self-contained builds every call target's
/// sites are in the graph and the cheaper site checks stay first.
PruneDecision decidePruning(const CallGraph &CG, const SummarySet &S,
                            bool CodeMissing = false);

/// Human-readable dump (graphjs callgraph --summaries).
std::string dumpText(const SummarySet &S, const CallGraph &CG);

/// JSON round trip (masks serialize as hex strings: JSON numbers are
/// doubles and would corrupt 64-bit masks).
std::string summariesToJSON(const SummarySet &S);
bool summariesFromJSON(const std::string &Text, SummarySet &Out,
                       std::string *Error = nullptr);

} // namespace analysis
} // namespace gjs

#endif // GJS_ANALYSIS_TAINTSUMMARY_H
