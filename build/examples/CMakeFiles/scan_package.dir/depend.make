# Empty dependencies file for scan_package.
# This may be replaced when dependencies are built.
