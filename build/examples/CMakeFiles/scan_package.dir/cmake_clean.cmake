file(REMOVE_RECURSE
  "CMakeFiles/scan_package.dir/scan_package.cpp.o"
  "CMakeFiles/scan_package.dir/scan_package.cpp.o.d"
  "scan_package"
  "scan_package.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_package.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
