file(REMOVE_RECURSE
  "CMakeFiles/case_study_set_value.dir/case_study_set_value.cpp.o"
  "CMakeFiles/case_study_set_value.dir/case_study_set_value.cpp.o.d"
  "case_study_set_value"
  "case_study_set_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_set_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
