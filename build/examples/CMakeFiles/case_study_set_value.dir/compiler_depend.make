# Empty compiler generated dependencies file for case_study_set_value.
# This may be replaced when dependencies are built.
