file(REMOVE_RECURSE
  "CMakeFiles/test_concrete.dir/test_concrete.cpp.o"
  "CMakeFiles/test_concrete.dir/test_concrete.cpp.o.d"
  "test_concrete"
  "test_concrete.pdb"
  "test_concrete[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concrete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
