# Empty dependencies file for test_concrete.
# This may be replaced when dependencies are built.
