# Empty dependencies file for test_mdg.
# This may be replaced when dependencies are built.
