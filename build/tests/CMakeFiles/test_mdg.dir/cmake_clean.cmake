file(REMOVE_RECURSE
  "CMakeFiles/test_mdg.dir/test_mdg.cpp.o"
  "CMakeFiles/test_mdg.dir/test_mdg.cpp.o.d"
  "test_mdg"
  "test_mdg.pdb"
  "test_mdg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
