file(REMOVE_RECURSE
  "CMakeFiles/test_odgen.dir/test_odgen.cpp.o"
  "CMakeFiles/test_odgen.dir/test_odgen.cpp.o.d"
  "test_odgen"
  "test_odgen.pdb"
  "test_odgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_odgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
