# Empty dependencies file for test_odgen.
# This may be replaced when dependencies are built.
