# Empty compiler generated dependencies file for test_normalizer.
# This may be replaced when dependencies are built.
