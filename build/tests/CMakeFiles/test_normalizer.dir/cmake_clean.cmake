file(REMOVE_RECURSE
  "CMakeFiles/test_normalizer.dir/test_normalizer.cpp.o"
  "CMakeFiles/test_normalizer.dir/test_normalizer.cpp.o.d"
  "test_normalizer"
  "test_normalizer.pdb"
  "test_normalizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_normalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
