file(REMOVE_RECURSE
  "CMakeFiles/test_graphdb.dir/test_graphdb.cpp.o"
  "CMakeFiles/test_graphdb.dir/test_graphdb.cpp.o.d"
  "test_graphdb"
  "test_graphdb.pdb"
  "test_graphdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
