# Empty compiler generated dependencies file for test_graphdb.
# This may be replaced when dependencies are built.
