# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_normalizer[1]_include.cmake")
include("/root/repo/build/tests/test_mdg[1]_include.cmake")
include("/root/repo/build/tests/test_builder[1]_include.cmake")
include("/root/repo/build/tests/test_soundness[1]_include.cmake")
include("/root/repo/build/tests/test_graphdb[1]_include.cmake")
include("/root/repo/build/tests/test_queries[1]_include.cmake")
include("/root/repo/build/tests/test_cfg[1]_include.cmake")
include("/root/repo/build/tests/test_odgen[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_concrete[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_lattice[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
