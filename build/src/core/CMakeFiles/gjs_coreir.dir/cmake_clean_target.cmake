file(REMOVE_RECURSE
  "libgjs_coreir.a"
)
