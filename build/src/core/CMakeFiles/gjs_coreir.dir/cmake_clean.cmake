file(REMOVE_RECURSE
  "CMakeFiles/gjs_coreir.dir/CoreIR.cpp.o"
  "CMakeFiles/gjs_coreir.dir/CoreIR.cpp.o.d"
  "CMakeFiles/gjs_coreir.dir/Normalizer.cpp.o"
  "CMakeFiles/gjs_coreir.dir/Normalizer.cpp.o.d"
  "libgjs_coreir.a"
  "libgjs_coreir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_coreir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
