# Empty dependencies file for gjs_coreir.
# This may be replaced when dependencies are built.
