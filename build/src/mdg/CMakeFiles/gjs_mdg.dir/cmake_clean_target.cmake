file(REMOVE_RECURSE
  "libgjs_mdg.a"
)
