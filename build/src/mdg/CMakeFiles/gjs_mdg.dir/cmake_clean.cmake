file(REMOVE_RECURSE
  "CMakeFiles/gjs_mdg.dir/MDG.cpp.o"
  "CMakeFiles/gjs_mdg.dir/MDG.cpp.o.d"
  "libgjs_mdg.a"
  "libgjs_mdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_mdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
