# Empty compiler generated dependencies file for gjs_mdg.
# This may be replaced when dependencies are built.
