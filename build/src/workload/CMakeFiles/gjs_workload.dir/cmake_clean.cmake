file(REMOVE_RECURSE
  "CMakeFiles/gjs_workload.dir/Datasets.cpp.o"
  "CMakeFiles/gjs_workload.dir/Datasets.cpp.o.d"
  "CMakeFiles/gjs_workload.dir/Packages.cpp.o"
  "CMakeFiles/gjs_workload.dir/Packages.cpp.o.d"
  "libgjs_workload.a"
  "libgjs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
