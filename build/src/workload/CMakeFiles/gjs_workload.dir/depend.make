# Empty dependencies file for gjs_workload.
# This may be replaced when dependencies are built.
