file(REMOVE_RECURSE
  "libgjs_workload.a"
)
