file(REMOVE_RECURSE
  "CMakeFiles/gjs_graphdb.dir/MDGImport.cpp.o"
  "CMakeFiles/gjs_graphdb.dir/MDGImport.cpp.o.d"
  "CMakeFiles/gjs_graphdb.dir/PropertyGraph.cpp.o"
  "CMakeFiles/gjs_graphdb.dir/PropertyGraph.cpp.o.d"
  "CMakeFiles/gjs_graphdb.dir/QueryEngine.cpp.o"
  "CMakeFiles/gjs_graphdb.dir/QueryEngine.cpp.o.d"
  "CMakeFiles/gjs_graphdb.dir/QueryParser.cpp.o"
  "CMakeFiles/gjs_graphdb.dir/QueryParser.cpp.o.d"
  "libgjs_graphdb.a"
  "libgjs_graphdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_graphdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
