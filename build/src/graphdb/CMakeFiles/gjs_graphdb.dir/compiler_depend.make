# Empty compiler generated dependencies file for gjs_graphdb.
# This may be replaced when dependencies are built.
