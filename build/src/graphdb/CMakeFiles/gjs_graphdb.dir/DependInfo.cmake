
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graphdb/MDGImport.cpp" "src/graphdb/CMakeFiles/gjs_graphdb.dir/MDGImport.cpp.o" "gcc" "src/graphdb/CMakeFiles/gjs_graphdb.dir/MDGImport.cpp.o.d"
  "/root/repo/src/graphdb/PropertyGraph.cpp" "src/graphdb/CMakeFiles/gjs_graphdb.dir/PropertyGraph.cpp.o" "gcc" "src/graphdb/CMakeFiles/gjs_graphdb.dir/PropertyGraph.cpp.o.d"
  "/root/repo/src/graphdb/QueryEngine.cpp" "src/graphdb/CMakeFiles/gjs_graphdb.dir/QueryEngine.cpp.o" "gcc" "src/graphdb/CMakeFiles/gjs_graphdb.dir/QueryEngine.cpp.o.d"
  "/root/repo/src/graphdb/QueryParser.cpp" "src/graphdb/CMakeFiles/gjs_graphdb.dir/QueryParser.cpp.o" "gcc" "src/graphdb/CMakeFiles/gjs_graphdb.dir/QueryParser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdg/CMakeFiles/gjs_mdg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
