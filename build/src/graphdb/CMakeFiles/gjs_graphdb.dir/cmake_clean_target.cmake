file(REMOVE_RECURSE
  "libgjs_graphdb.a"
)
