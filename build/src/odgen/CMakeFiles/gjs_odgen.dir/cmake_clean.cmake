file(REMOVE_RECURSE
  "CMakeFiles/gjs_odgen.dir/ODG.cpp.o"
  "CMakeFiles/gjs_odgen.dir/ODG.cpp.o.d"
  "CMakeFiles/gjs_odgen.dir/ODGenAnalyzer.cpp.o"
  "CMakeFiles/gjs_odgen.dir/ODGenAnalyzer.cpp.o.d"
  "libgjs_odgen.a"
  "libgjs_odgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_odgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
