# Empty compiler generated dependencies file for gjs_odgen.
# This may be replaced when dependencies are built.
