file(REMOVE_RECURSE
  "libgjs_odgen.a"
)
