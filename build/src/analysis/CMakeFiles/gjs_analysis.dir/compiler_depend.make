# Empty compiler generated dependencies file for gjs_analysis.
# This may be replaced when dependencies are built.
