file(REMOVE_RECURSE
  "libgjs_analysis.a"
)
