file(REMOVE_RECURSE
  "CMakeFiles/gjs_analysis.dir/ConcreteInterp.cpp.o"
  "CMakeFiles/gjs_analysis.dir/ConcreteInterp.cpp.o.d"
  "CMakeFiles/gjs_analysis.dir/MDGBuilder.cpp.o"
  "CMakeFiles/gjs_analysis.dir/MDGBuilder.cpp.o.d"
  "libgjs_analysis.a"
  "libgjs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
