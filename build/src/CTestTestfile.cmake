# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("frontend")
subdirs("cfg")
subdirs("core")
subdirs("mdg")
subdirs("analysis")
subdirs("graphdb")
subdirs("queries")
subdirs("scanner")
subdirs("odgen")
subdirs("workload")
subdirs("eval")
