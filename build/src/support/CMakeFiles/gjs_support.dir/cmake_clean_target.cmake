file(REMOVE_RECURSE
  "libgjs_support.a"
)
