# Empty dependencies file for gjs_support.
# This may be replaced when dependencies are built.
