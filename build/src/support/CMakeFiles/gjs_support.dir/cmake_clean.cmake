file(REMOVE_RECURSE
  "CMakeFiles/gjs_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/gjs_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/gjs_support.dir/JSON.cpp.o"
  "CMakeFiles/gjs_support.dir/JSON.cpp.o.d"
  "CMakeFiles/gjs_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/gjs_support.dir/TablePrinter.cpp.o.d"
  "libgjs_support.a"
  "libgjs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
