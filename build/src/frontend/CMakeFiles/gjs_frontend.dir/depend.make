# Empty dependencies file for gjs_frontend.
# This may be replaced when dependencies are built.
