file(REMOVE_RECURSE
  "libgjs_frontend.a"
)
