file(REMOVE_RECURSE
  "CMakeFiles/gjs_frontend.dir/ASTPrinter.cpp.o"
  "CMakeFiles/gjs_frontend.dir/ASTPrinter.cpp.o.d"
  "CMakeFiles/gjs_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/gjs_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/gjs_frontend.dir/Parser.cpp.o"
  "CMakeFiles/gjs_frontend.dir/Parser.cpp.o.d"
  "libgjs_frontend.a"
  "libgjs_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
