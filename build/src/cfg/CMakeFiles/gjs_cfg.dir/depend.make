# Empty dependencies file for gjs_cfg.
# This may be replaced when dependencies are built.
