file(REMOVE_RECURSE
  "CMakeFiles/gjs_cfg.dir/CFG.cpp.o"
  "CMakeFiles/gjs_cfg.dir/CFG.cpp.o.d"
  "libgjs_cfg.a"
  "libgjs_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
