file(REMOVE_RECURSE
  "libgjs_cfg.a"
)
