# Empty compiler generated dependencies file for gjs_scanner.
# This may be replaced when dependencies are built.
