file(REMOVE_RECURSE
  "libgjs_scanner.a"
)
