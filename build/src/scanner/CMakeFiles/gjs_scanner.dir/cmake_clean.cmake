file(REMOVE_RECURSE
  "CMakeFiles/gjs_scanner.dir/Scanner.cpp.o"
  "CMakeFiles/gjs_scanner.dir/Scanner.cpp.o.d"
  "CMakeFiles/gjs_scanner.dir/WitnessReplay.cpp.o"
  "CMakeFiles/gjs_scanner.dir/WitnessReplay.cpp.o.d"
  "libgjs_scanner.a"
  "libgjs_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
