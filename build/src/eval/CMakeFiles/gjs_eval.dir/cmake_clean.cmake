file(REMOVE_RECURSE
  "CMakeFiles/gjs_eval.dir/Harness.cpp.o"
  "CMakeFiles/gjs_eval.dir/Harness.cpp.o.d"
  "CMakeFiles/gjs_eval.dir/Metrics.cpp.o"
  "CMakeFiles/gjs_eval.dir/Metrics.cpp.o.d"
  "libgjs_eval.a"
  "libgjs_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
