file(REMOVE_RECURSE
  "libgjs_eval.a"
)
