# Empty compiler generated dependencies file for gjs_eval.
# This may be replaced when dependencies are built.
