file(REMOVE_RECURSE
  "libgjs_queries.a"
)
