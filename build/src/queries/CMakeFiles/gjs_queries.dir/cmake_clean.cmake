file(REMOVE_RECURSE
  "CMakeFiles/gjs_queries.dir/QueryRunner.cpp.o"
  "CMakeFiles/gjs_queries.dir/QueryRunner.cpp.o.d"
  "CMakeFiles/gjs_queries.dir/SinkConfig.cpp.o"
  "CMakeFiles/gjs_queries.dir/SinkConfig.cpp.o.d"
  "CMakeFiles/gjs_queries.dir/Traversals.cpp.o"
  "CMakeFiles/gjs_queries.dir/Traversals.cpp.o.d"
  "libgjs_queries.a"
  "libgjs_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gjs_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
