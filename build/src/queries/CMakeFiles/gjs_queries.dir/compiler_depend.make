# Empty compiler generated dependencies file for gjs_queries.
# This may be replaced when dependencies are built.
