# Empty dependencies file for graphjs.
# This may be replaced when dependencies are built.
