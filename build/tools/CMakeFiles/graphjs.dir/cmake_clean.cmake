file(REMOVE_RECURSE
  "CMakeFiles/graphjs.dir/graphjs_cli.cpp.o"
  "CMakeFiles/graphjs.dir/graphjs_cli.cpp.o.d"
  "graphjs"
  "graphjs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphjs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
