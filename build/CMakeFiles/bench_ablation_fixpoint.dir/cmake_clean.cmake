file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fixpoint.dir/bench/bench_ablation_fixpoint.cpp.o"
  "CMakeFiles/bench_ablation_fixpoint.dir/bench/bench_ablation_fixpoint.cpp.o.d"
  "bench/bench_ablation_fixpoint"
  "bench/bench_ablation_fixpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fixpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
