file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_venn.dir/bench/bench_fig6_venn.cpp.o"
  "CMakeFiles/bench_fig6_venn.dir/bench/bench_fig6_venn.cpp.o.d"
  "bench/bench_fig6_venn"
  "bench/bench_fig6_venn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_venn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
