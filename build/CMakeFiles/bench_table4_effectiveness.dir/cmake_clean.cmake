file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_effectiveness.dir/bench/bench_table4_effectiveness.cpp.o"
  "CMakeFiles/bench_table4_effectiveness.dir/bench/bench_table4_effectiveness.cpp.o.d"
  "bench/bench_table4_effectiveness"
  "bench/bench_table4_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
