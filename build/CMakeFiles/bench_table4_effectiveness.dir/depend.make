# Empty dependencies file for bench_table4_effectiveness.
# This may be replaced when dependencies are built.
