file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_graphsize.dir/bench/bench_table7_graphsize.cpp.o"
  "CMakeFiles/bench_table7_graphsize.dir/bench/bench_table7_graphsize.cpp.o.d"
  "bench/bench_table7_graphsize"
  "bench/bench_table7_graphsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_graphsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
