file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_collected.dir/bench/bench_table5_collected.cpp.o"
  "CMakeFiles/bench_table5_collected.dir/bench/bench_table5_collected.cpp.o.d"
  "bench/bench_table5_collected"
  "bench/bench_table5_collected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_collected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
