# Empty dependencies file for bench_table5_collected.
# This may be replaced when dependencies are built.
