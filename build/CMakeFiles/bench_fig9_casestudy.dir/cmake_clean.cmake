file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_casestudy.dir/bench/bench_fig9_casestudy.cpp.o"
  "CMakeFiles/bench_fig9_casestudy.dir/bench/bench_fig9_casestudy.cpp.o.d"
  "bench/bench_fig9_casestudy"
  "bench/bench_fig9_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
