
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_casestudy.cpp" "CMakeFiles/bench_fig9_casestudy.dir/bench/bench_fig9_casestudy.cpp.o" "gcc" "CMakeFiles/bench_fig9_casestudy.dir/bench/bench_fig9_casestudy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/gjs_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gjs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/odgen/CMakeFiles/gjs_odgen.dir/DependInfo.cmake"
  "/root/repo/build/src/scanner/CMakeFiles/gjs_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/queries/CMakeFiles/gjs_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/graphdb/CMakeFiles/gjs_graphdb.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gjs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mdg/CMakeFiles/gjs_mdg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gjs_coreir.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/gjs_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/gjs_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
