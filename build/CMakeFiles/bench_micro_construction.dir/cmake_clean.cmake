file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_construction.dir/bench/bench_micro_construction.cpp.o"
  "CMakeFiles/bench_micro_construction.dir/bench/bench_micro_construction.cpp.o.d"
  "bench/bench_micro_construction"
  "bench/bench_micro_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
