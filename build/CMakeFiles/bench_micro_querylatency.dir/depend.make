# Empty dependencies file for bench_micro_querylatency.
# This may be replaced when dependencies are built.
