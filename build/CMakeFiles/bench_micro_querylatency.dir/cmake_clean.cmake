file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_querylatency.dir/bench/bench_micro_querylatency.cpp.o"
  "CMakeFiles/bench_micro_querylatency.dir/bench/bench_micro_querylatency.cpp.o.d"
  "bench/bench_micro_querylatency"
  "bench/bench_micro_querylatency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_querylatency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
