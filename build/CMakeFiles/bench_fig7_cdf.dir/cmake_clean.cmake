file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_cdf.dir/bench/bench_fig7_cdf.cpp.o"
  "CMakeFiles/bench_fig7_cdf.dir/bench/bench_fig7_cdf.cpp.o.d"
  "bench/bench_fig7_cdf"
  "bench/bench_fig7_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
